#include "analysis/lints.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.h"
#include "ws/classify.h"
#include "ws/spec_parser.h"
#include "ws/validate.h"

namespace wsv {
namespace analysis {

namespace {

void ReportLint(DiagnosticSink* sink, const char* rule_id, Span span,
                std::string message, std::string hint = "",
                std::string page = "") {
  const RuleInfo* info = FindRule(rule_id);
  sink->Report(rule_id, info != nullptr ? info->severity : Severity::kWarning,
               span, std::move(message), std::move(hint),
               info != nullptr ? info->anchor : "", std::move(page));
}

// Applies `fn(page, rule_label, body, rule_span)` to every rule body.
template <typename Fn>
void ForEachBody(const WebService& service, const Fn& fn) {
  for (const PageSchema& page : service.pages()) {
    for (const InputRule& r : page.input_rules) {
      fn(page, r.ToString(), r.body, r.span);
    }
    for (const StateRule& r : page.state_rules) {
      fn(page, r.ToString(), r.body, r.span);
    }
    for (const ActionRule& r : page.action_rules) {
      fn(page, r.ToString(), r.body, r.span);
    }
    for (const TargetRule& r : page.target_rules) {
      fn(page, r.ToString(), r.body, r.span);
    }
  }
}

bool IsInputRelation(const Vocabulary& vocab, const std::string& name) {
  const RelationSymbol* sym = vocab.FindRelation(name);
  return sym != nullptr && sym->kind == SymbolKind::kInput;
}

// ---------------------------------------------------------------------------
// WSV-IB-004: prev.I atoms that no predecessor page can have populated.
//
// Under the paper's (lossy) semantics prev_I holds the *previous* step's
// input over I; a prev.I atom on page W can only be satisfied when some
// predecessor of W offers I. If none does, the atom is always empty — the
// author was likely assuming the lossless variant of prev_I, which
// Theorem 3.9 shows undecidable.

void LintLosslessPrev(const WebService& service, DiagnosticSink* sink) {
  // Predecessor map from target rules.
  std::map<std::string, std::set<std::string>> preds;
  for (const PageSchema& page : service.pages()) {
    for (const TargetRule& rule : page.target_rules) {
      preds[rule.target].insert(page.name);
    }
  }
  ForEachBody(service, [&](const PageSchema& page, const std::string& rule,
                           const FormulaPtr& body, Span rule_span) {
    for (const Atom& atom : body->Atoms()) {
      if (!atom.prev || !IsInputRelation(service.vocab(), atom.relation)) {
        continue;
      }
      bool fed = false;
      for (const std::string& pred : preds[page.name]) {
        const PageSchema* p = service.FindPage(pred);
        if (p != nullptr && p->HasInputRelation(atom.relation)) {
          fed = true;
          break;
        }
      }
      if (!fed) {
        ReportLint(sink, "WSV-IB-004",
                   atom.span.IsValid() ? atom.span : rule_span,
                   "page " + page.name + ", " + rule + ": prev." +
                       atom.relation +
                       " is always empty: no predecessor page of " +
                       page.name + " offers input " + atom.relation,
                   "offer " + atom.relation +
                       " on a page with a target rule into " + page.name +
                       "; relying on inputs surviving extra steps needs "
                       "lossless prev_I, which is undecidable",
                   page.name);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// WSV-NAV-001: pages unreachable from the home page via target edges.

void LintUnreachablePages(const WebService& service, DiagnosticSink* sink) {
  if (service.home_page().empty() ||
      service.FindPage(service.home_page()) == nullptr) {
    return;  // validation already reported the broken root
  }
  std::set<std::string> reached;
  std::vector<std::string> frontier{service.home_page()};
  reached.insert(service.home_page());
  while (!frontier.empty()) {
    const PageSchema* page = service.FindPage(frontier.back());
    frontier.pop_back();
    if (page == nullptr) continue;
    for (const std::string& t : page->targets) {
      if (reached.insert(t).second) frontier.push_back(t);
    }
  }
  for (const PageSchema& page : service.pages()) {
    if (reached.count(page.name) == 0) {
      ReportLint(sink, "WSV-NAV-001", page.span,
                 "page " + page.name + " is unreachable from home page " +
                     service.home_page(),
                 "add a target rule leading to " + page.name +
                     " or remove the page",
                 page.name);
    }
  }
}

// ---------------------------------------------------------------------------
// WSV-NAV-002: syntactically overlapping target rules.
//
// Target rules of one page should be mutually exclusive, otherwise
// navigation is nondeterministic (the runtime picks the first match).
// We prove disjointness syntactically, using that each input relation
// holds at most one tuple per step:
//   (a) complementary conjuncts      phi   vs  !phi
//   (b) differing ground input atoms I(a)  vs  I(b), a != b
//   (c) input chosen vs not chosen   I(a)  vs  !(exists x . I(x) ...)
// Disjunct pairs not provably disjoint by these rules get a warning.

std::vector<FormulaPtr> FlattenOr(const FormulaPtr& f) {
  if (f->kind() != Formula::Kind::kOr) return {f};
  std::vector<FormulaPtr> out;
  for (const FormulaPtr& c : f->children()) {
    std::vector<FormulaPtr> sub = FlattenOr(c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void FlattenAndInto(const FormulaPtr& f, std::vector<FormulaPtr>* out) {
  if (f->kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : f->children()) FlattenAndInto(c, out);
  } else {
    out->push_back(f);
  }
}

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  std::vector<FormulaPtr> out;
  FlattenAndInto(f, &out);
  return out;
}

// (a) some conjunct of one side is the negation of a conjunct of the other.
bool HasComplementaryConjuncts(const std::vector<FormulaPtr>& a,
                               const std::vector<FormulaPtr>& b) {
  auto complements = [](const FormulaPtr& x, const FormulaPtr& y) {
    return x->kind() == Formula::Kind::kNot &&
           x->children()[0]->ToString() == y->ToString();
  };
  for (const FormulaPtr& ca : a) {
    for (const FormulaPtr& cb : b) {
      if (complements(ca, cb) || complements(cb, ca)) return true;
    }
  }
  return false;
}

bool AllTermsLiteral(const Atom& atom) {
  for (const Term& t : atom.terms) {
    if (!t.is_literal()) return false;
  }
  return !atom.terms.empty();
}

// (b) both sides positively require the same input relation to hold a
// fully literal tuple, and the tuples differ at some position. Since an
// input relation holds at most one tuple per step, both cannot hold.
bool HasDifferingGroundInputAtoms(const std::vector<FormulaPtr>& a,
                                  const std::vector<FormulaPtr>& b,
                                  const Vocabulary& vocab) {
  for (const FormulaPtr& ca : a) {
    if (ca->kind() != Formula::Kind::kAtom) continue;
    const Atom& atom_a = ca->atom();
    if (atom_a.prev || !IsInputRelation(vocab, atom_a.relation) ||
        !AllTermsLiteral(atom_a)) {
      continue;
    }
    for (const FormulaPtr& cb : b) {
      if (cb->kind() != Formula::Kind::kAtom) continue;
      const Atom& atom_b = cb->atom();
      if (atom_b.prev || atom_b.relation != atom_a.relation ||
          !AllTermsLiteral(atom_b) ||
          atom_b.terms.size() != atom_a.terms.size()) {
        continue;
      }
      for (size_t i = 0; i < atom_a.terms.size(); ++i) {
        if (atom_a.terms[i].name() != atom_b.terms[i].name()) return true;
      }
    }
  }
  return false;
}

// True iff `f` is the "no tuple of I was chosen" pattern:
// !(exists x... . I(x...) [& true]), all of I's terms quantified.
bool IsNoInputChosen(const FormulaPtr& f, const std::string& relation,
                     const Vocabulary& vocab) {
  if (f->kind() != Formula::Kind::kNot) return false;
  const FormulaPtr& inner = f->children()[0];
  if (inner->kind() != Formula::Kind::kExists) return false;
  std::vector<Atom> atoms = inner->body()->Atoms();
  if (atoms.size() != 1) return false;
  const Atom& atom = atoms[0];
  if (atom.prev || atom.relation != relation ||
      !IsInputRelation(vocab, atom.relation)) {
    return false;
  }
  std::set<std::string> bound(inner->variables().begin(),
                              inner->variables().end());
  for (const Term& t : atom.terms) {
    if (!t.is_variable() || bound.count(t.name()) == 0) return false;
  }
  return true;
}

// (c) one side positively requires a tuple of I, the other requires that
// no tuple of I was chosen.
bool HasChosenVsNotChosen(const std::vector<FormulaPtr>& a,
                          const std::vector<FormulaPtr>& b,
                          const Vocabulary& vocab) {
  auto check = [&](const std::vector<FormulaPtr>& pos,
                   const std::vector<FormulaPtr>& neg) {
    for (const FormulaPtr& cp : pos) {
      if (cp->kind() != Formula::Kind::kAtom) continue;
      const Atom& atom = cp->atom();
      if (atom.prev || !IsInputRelation(vocab, atom.relation)) continue;
      for (const FormulaPtr& cn : neg) {
        if (IsNoInputChosen(cn, atom.relation, vocab)) return true;
      }
    }
    return false;
  };
  return check(a, b) || check(b, a);
}

bool ProvablyDisjoint(const FormulaPtr& d1, const FormulaPtr& d2,
                      const Vocabulary& vocab) {
  const std::vector<FormulaPtr> a = Conjuncts(d1);
  const std::vector<FormulaPtr> b = Conjuncts(d2);
  return HasComplementaryConjuncts(a, b) ||
         HasDifferingGroundInputAtoms(a, b, vocab) ||
         HasChosenVsNotChosen(a, b, vocab);
}

void LintOverlappingTargets(const WebService& service,
                            DiagnosticSink* sink) {
  for (const PageSchema& page : service.pages()) {
    for (size_t i = 0; i < page.target_rules.size(); ++i) {
      for (size_t j = i + 1; j < page.target_rules.size(); ++j) {
        const TargetRule& r1 = page.target_rules[i];
        const TargetRule& r2 = page.target_rules[j];
        if (r1.target == r2.target) continue;  // duplicate = WSV-VAL-004
        bool disjoint = true;
        for (const FormulaPtr& d1 : FlattenOr(r1.body)) {
          for (const FormulaPtr& d2 : FlattenOr(r2.body)) {
            if (!ProvablyDisjoint(d1, d2, service.vocab())) {
              disjoint = false;
              break;
            }
          }
          if (!disjoint) break;
        }
        if (!disjoint) {
          ReportLint(sink, "WSV-NAV-002",
                     r2.span.IsValid() ? r2.span : page.span,
                     "page " + page.name + ": target rules for " +
                         r1.target + " and " + r2.target +
                         " are not provably disjoint; navigation may be "
                         "nondeterministic",
                     "guard the rules with distinct input options (e.g. "
                     "different button labels)",
                     page.name);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WSV-DEAD-*: dead or unused schema elements.

void LintDeadSymbols(const WebService& service, DiagnosticSink* sink) {
  const Vocabulary& vocab = service.vocab();

  // Usage over every rule body: relations referenced, constants referenced.
  std::set<std::string> referenced_relations;
  std::set<std::string> referenced_constants;
  ForEachBody(service, [&](const PageSchema&, const std::string&,
                           const FormulaPtr& body, Span) {
    for (const Atom& atom : body->Atoms()) {
      referenced_relations.insert(atom.relation);
    }
    for (const std::string& c : body->ConstantSymbols()) {
      referenced_constants.insert(c);
    }
  });

  // State writes: heads of insertion rules. Reads: body references.
  std::set<std::string> inserted_states;
  std::set<std::string> action_rule_heads;
  std::set<std::string> offered_inputs;
  std::set<std::string> requested_constants;
  for (const PageSchema& page : service.pages()) {
    for (const StateRule& r : page.state_rules) {
      if (r.insert) inserted_states.insert(r.state);
    }
    for (const ActionRule& r : page.action_rules) {
      action_rule_heads.insert(r.action);
    }
    offered_inputs.insert(page.inputs.begin(), page.inputs.end());
    requested_constants.insert(page.input_constants.begin(),
                               page.input_constants.end());
  }

  for (const RelationSymbol& sym : vocab.relations()) {
    switch (sym.kind) {
      case SymbolKind::kState:
        if (referenced_relations.count(sym.name) > 0 &&
            inserted_states.count(sym.name) == 0) {
          ReportLint(sink, "WSV-DEAD-001", sym.span,
                     "state relation " + sym.name +
                         " is read but never inserted; it is always empty",
                     "add a '+" + sym.name + "' state rule or drop the "
                     "reads");
        } else if (inserted_states.count(sym.name) > 0 &&
                   referenced_relations.count(sym.name) == 0) {
          ReportLint(sink, "WSV-DEAD-002", sym.span,
                     "state relation " + sym.name +
                         " is written but never read by any rule",
                     "it can still be observed by temporal properties; "
                     "otherwise remove it");
        }
        break;
      case SymbolKind::kInput:
        if (offered_inputs.count(sym.name) == 0 &&
            referenced_relations.count(sym.name) == 0) {
          ReportLint(sink, "WSV-DEAD-003", sym.span,
                     "input relation " + sym.name +
                         " is declared but never offered by any page",
                     "add 'input " + sym.name + ";' or an options rule to "
                     "a page, or drop the declaration");
        }
        break;
      case SymbolKind::kAction:
        if (action_rule_heads.count(sym.name) == 0) {
          ReportLint(sink, "WSV-DEAD-004", sym.span,
                     "action relation " + sym.name +
                         " has no action rule; it can never fire",
                     "add an 'action " + sym.name + "(...) :- ...;' rule "
                     "or drop the declaration");
        }
        break;
      case SymbolKind::kDatabase:
        if (referenced_relations.count(sym.name) == 0) {
          ReportLint(sink, "WSV-DEAD-005", sym.span,
                     "database relation " + sym.name +
                         " is never referenced by any rule");
        }
        break;
      case SymbolKind::kPage:
        break;
    }
  }
  for (const std::string& c : vocab.constants()) {
    const bool is_input = vocab.IsInputConstant(c);
    const bool used = referenced_constants.count(c) > 0 ||
                      (is_input && requested_constants.count(c) > 0);
    if (!used) {
      ReportLint(sink, "WSV-DEAD-003", vocab.ConstantSpan(c),
                 std::string(is_input ? "input constant " : "constant ") +
                     c + " is declared but never used",
                 "reference it in a rule or drop the declaration");
    }
  }
}

// ---------------------------------------------------------------------------
// WSV-DOM-001: literal input atoms outside the page's options domain.
//
// When an options rule enumerates its tuples syntactically (a disjunction
// of equality constraints over the head variables, the common
//   options button(x) :- x = "login" | x = "register";
// idiom), any rule of the same page requiring a fully literal tuple of
// that input can be checked against the enumeration — catching label
// typos like button("lgoin") that otherwise silently never fire.

// Extracts the enumerated tuple set of an options rule, or returns false
// when the body is not a syntactic enumeration.
bool ExtractOptionsDomain(const InputRule& rule,
                          std::set<std::vector<std::string>>* domain) {
  for (const FormulaPtr& disjunct : FlattenOr(rule.body)) {
    std::map<std::string, std::string> assignment;
    for (const FormulaPtr& c : Conjuncts(disjunct)) {
      if (c->kind() != Formula::Kind::kEquals) return false;
      const Term& lhs = c->lhs();
      const Term& rhs = c->rhs();
      const Term* var = nullptr;
      const Term* lit = nullptr;
      if (lhs.is_variable() && rhs.is_literal()) {
        var = &lhs;
        lit = &rhs;
      } else if (rhs.is_variable() && lhs.is_literal()) {
        var = &rhs;
        lit = &lhs;
      } else {
        return false;
      }
      auto [it, fresh] = assignment.emplace(var->name(), lit->name());
      if (!fresh && it->second != lit->name()) return false;
    }
    std::vector<std::string> tuple;
    for (const std::string& v : rule.head_vars) {
      auto it = assignment.find(v);
      if (it == assignment.end()) return false;  // head var unconstrained
      tuple.push_back(it->second);
    }
    domain->insert(std::move(tuple));
  }
  return true;
}

void LintOptionsDomain(const WebService& service, DiagnosticSink* sink) {
  for (const PageSchema& page : service.pages()) {
    // Domains per input relation of this page, where extractable.
    std::map<std::string, std::set<std::vector<std::string>>> domains;
    for (const InputRule& rule : page.input_rules) {
      std::set<std::vector<std::string>> domain;
      if (ExtractOptionsDomain(rule, &domain)) {
        domains[rule.input] = std::move(domain);
      }
    }
    if (domains.empty()) continue;

    auto check_body = [&](const std::string& rule_label,
                          const FormulaPtr& body, Span rule_span) {
      for (const Atom& atom : body->Atoms()) {
        if (atom.prev) continue;
        auto it = domains.find(atom.relation);
        if (it == domains.end() || !AllTermsLiteral(atom)) continue;
        std::vector<std::string> tuple;
        for (const Term& t : atom.terms) tuple.push_back(t.name());
        if (it->second.count(tuple) == 0) {
          ReportLint(sink, "WSV-DOM-001",
                     atom.span.IsValid() ? atom.span : rule_span,
                     "page " + page.name + ", " + rule_label + ": " +
                         atom.ToString() + " can never hold: the options "
                         "rule for " + atom.relation +
                         " does not offer this tuple",
                     "check the literal against the options rule (typo?)",
                     page.name);
        }
      }
    };
    for (const StateRule& r : page.state_rules) {
      check_body(r.ToString(), r.body, r.span);
    }
    for (const ActionRule& r : page.action_rules) {
      check_body(r.ToString(), r.body, r.span);
    }
    for (const TargetRule& r : page.target_rules) {
      check_body(r.ToString(), r.body, r.span);
    }
  }
}

// ---------------------------------------------------------------------------
// WSV-DEP-001/002: symbols whose dependence-graph forward closure never
// reaches a target rule or an action relation. Navigation and actions
// are what every run observably does; a relation outside their combined
// backward cone can only matter to a property that names it (or one of
// its dependents) directly. Notes, not warnings: the paper's own
// e-commerce demo ships such relations (the cart subsystem).

void LintDepGraph(const WebService& service, DiagnosticSink* sink) {
  const DepGraph graph = DepGraph::Build(service);
  const std::vector<DepNode>& nodes = graph.nodes();
  auto observable = [&](int start) {
    std::vector<char> reach = graph.ForwardReach({start});
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (!reach[j] || static_cast<int>(j) == start) continue;
      if (nodes[j].kind == DepNodeKind::kRule &&
          nodes[j].rule_kind == DepNode::RuleKind::kTarget) {
        return true;
      }
      if (nodes[j].kind == DepNodeKind::kRelation &&
          nodes[j].symbol_kind == SymbolKind::kAction) {
        return true;
      }
    }
    return false;
  };
  for (size_t i = 0; i < nodes.size(); ++i) {
    const DepNode& node = nodes[i];
    if (node.kind != DepNodeKind::kRelation) continue;
    const int id = static_cast<int>(i);
    if (node.symbol_kind == SymbolKind::kInput) {
      // Inputs with no options rule and no reader at all are
      // WSV-DEAD-003 territory; DEP-001 is for inputs that *are* wired
      // up yet still cannot influence navigation or actions.
      if (node.reads.empty() && node.readers.empty()) continue;
      if (!observable(id)) {
        ReportLint(sink, "WSV-DEP-001", node.span,
                   "input " + node.name +
                       " can never influence navigation or actions: no "
                       "target rule or action depends on it, directly or "
                       "transitively",
                   "only a property naming " + node.name +
                       " (or a relation it feeds) can observe it; wire it "
                       "into a state, action, or target rule, or drop it");
      }
    } else if (node.symbol_kind == SymbolKind::kState) {
      // Written-never-read is WSV-DEAD-002; DEP-002 is the transitive
      // variant: the relation is read, but every chain of readers dead-
      // ends before a target rule or action relation.
      bool written = false;
      for (int r : node.reads) {
        if (nodes[r].kind == DepNodeKind::kRule) written = true;
      }
      if (!written || node.readers.empty()) continue;
      if (!observable(id)) {
        ReportLint(sink, "WSV-DEP-002", node.span,
                   "state " + node.name +
                       " is written and read, but no target rule or "
                       "action transitively depends on it",
                   "the " + node.name +
                       " subsystem cannot steer the run; only a property "
                       "naming it (or a relation it feeds) can observe it");
      }
    }
  }
}

}  // namespace

void RunAllLints(const WebService& service, DiagnosticSink* sink) {
  CollectInputBoundedDiagnostics(service, sink);  // WSV-IB-001/002/003
  LintLosslessPrev(service, sink);                // WSV-IB-004
  LintUnreachablePages(service, sink);            // WSV-NAV-001
  LintOverlappingTargets(service, sink);          // WSV-NAV-002
  LintDeadSymbols(service, sink);                 // WSV-DEAD-*
  LintDepGraph(service, sink);                    // WSV-DEP-001/002
  LintOptionsDomain(service, sink);               // WSV-DOM-001
}

void LintSpecText(std::string_view source, DiagnosticSink* sink) {
  StatusOr<WebService> parsed = ParseServiceSpecWithoutValidation(source);
  if (!parsed.ok()) {
    sink->Report("WSV-PARSE-001", Severity::kError,
                 SpanFromMessage(parsed.status().message()),
                 parsed.status().message());
    return;
  }
  ValidateServiceDiagnostics(*parsed, sink);
  RunAllLints(*parsed, sink);
  sink->SortBySpan();
}

}  // namespace analysis
}  // namespace wsv
