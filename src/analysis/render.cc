#include "analysis/render.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace wsv {
namespace analysis {

namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  AppendJsonEscaped(s, &out);
  out += "\"";
  return out;
}

std::string Plural(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       const std::string& source, const std::string& path) {
  const std::vector<std::string> lines = SplitLines(source);
  std::string out;
  size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
    out += path;
    if (d.span.IsValid()) out += ":" + d.span.ToString();
    out += ": ";
    out += SeverityToString(d.severity);
    out += ": ";
    out += d.message;
    out += " [" + d.rule_id + "]";
    out += "\n";
    // Quote the offending line with a caret marker under the span.
    if (d.span.IsValid() &&
        d.span.line <= static_cast<int>(lines.size())) {
      const std::string& src_line = lines[d.span.line - 1];
      out += "  " + src_line + "\n";
      std::string marker(2, ' ');
      for (int i = 1; i < d.span.column; ++i) {
        const char c =
            i <= static_cast<int>(src_line.size()) ? src_line[i - 1] : ' ';
        marker.push_back(c == '\t' ? '\t' : ' ');
      }
      marker.push_back('^');
      int width = 1;
      if (d.span.end_line == d.span.line &&
          d.span.end_column > d.span.column) {
        width = d.span.end_column - d.span.column;
      }
      for (int i = 1; i < width; ++i) marker.push_back('~');
      out += marker + "\n";
    }
    if (!d.hint.empty()) out += "    = hint: " + d.hint + "\n";
    if (!d.anchor.empty()) out += "    = anchor: " + d.anchor + "\n";
  }
  out += Plural(errors, "error") + ", " + Plural(warnings, "warning") +
         ", " + Plural(notes, "note") + "\n";
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& path) {
  std::string out = "{\n  \"file\": " + JsonString(path) +
                    ",\n  \"diagnostics\": [";
  size_t errors = 0, warnings = 0, notes = 0;
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": " + JsonString(d.rule_id);
    out += ", \"severity\": " + JsonString(SeverityToString(d.severity));
    if (d.span.IsValid()) {
      out += ", \"line\": " + std::to_string(d.span.line);
      out += ", \"column\": " + std::to_string(d.span.column);
    }
    out += ", \"message\": " + JsonString(d.message);
    if (!d.hint.empty()) out += ", \"hint\": " + JsonString(d.hint);
    if (!d.anchor.empty()) out += ", \"anchor\": " + JsonString(d.anchor);
    if (!d.page.empty()) out += ", \"page\": " + JsonString(d.page);
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"summary\": {\"errors\": " + std::to_string(errors) +
         ", \"warnings\": " + std::to_string(warnings) +
         ", \"notes\": " + std::to_string(notes) + "}\n}\n";
  return out;
}

std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        const std::string& path) {
  // Collect the distinct rules appearing in the findings, preferring
  // registry metadata when available.
  std::vector<std::string> rule_ids;
  std::set<std::string> seen;
  for (const Diagnostic& d : diagnostics) {
    if (seen.insert(d.rule_id).second) rule_ids.push_back(d.rule_id);
  }
  std::sort(rule_ids.begin(), rule_ids.end());

  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"wsvcli\",\n";
  out +=
      "          \"informationUri\": "
      "\"https://doi.org/10.1145/1055558.1055564\",\n";
  out += "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids) {
    out += first ? "\n" : ",\n";
    first = false;
    const RuleInfo* info = FindRule(id);
    out += "            {\"id\": " + JsonString(id);
    out += ", \"shortDescription\": {\"text\": " +
           JsonString(info != nullptr ? info->summary : id) + "}";
    if (info != nullptr && info->anchor[0] != '\0') {
      out += ", \"properties\": {\"paperAnchor\": " +
             JsonString(info->anchor) + "}";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n          ]\n";
  out += "        }\n      },\n";
  out += "      \"results\": [";
  first = true;
  for (const Diagnostic& d : diagnostics) {
    out += first ? "\n" : ",\n";
    first = false;
    const char* level =
        d.severity == Severity::kError
            ? "error"
            : d.severity == Severity::kWarning ? "warning" : "note";
    std::string message = d.message;
    if (!d.hint.empty()) message += " (hint: " + d.hint + ")";
    out += "        {\"ruleId\": " + JsonString(d.rule_id);
    out += ", \"level\": " + JsonString(level);
    out += ", \"message\": {\"text\": " + JsonString(message) + "}";
    out += ", \"locations\": [{\"physicalLocation\": {";
    out += "\"artifactLocation\": {\"uri\": " + JsonString(path) + "}";
    if (d.span.IsValid()) {
      out += ", \"region\": {\"startLine\": " + std::to_string(d.span.line) +
             ", \"startColumn\": " + std::to_string(d.span.column);
      if (d.span.end_line >= d.span.line) {
        out += ", \"endLine\": " + std::to_string(d.span.end_line) +
               ", \"endColumn\": " + std::to_string(d.span.end_column);
      }
      out += "}";
    }
    out += "}}]}";
  }
  out += first ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

}  // namespace analysis
}  // namespace wsv
