#include "analysis/depgraph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "fo/rewrite.h"
#include "obs/metrics.h"

namespace wsv {
namespace analysis {

namespace {

// ---------------------------------------------------------------------------
// Domain-independence analysis.
//
// The FO evaluator's quantifier fallback enumerates the *active domain*
// (every value in any instance of the current configuration), so a
// quantified formula can observe relations it never names. Slicing
// removes content from exactly those relations; a formula whose truth
// may depend on them cannot be sliced against. The syntactic criterion
// below implies semantic domain independence: truth is identical over
// any two active domains that both contain the named relations'
// contents, the formula's literals/constants, and the free-variable
// bindings.
// ---------------------------------------------------------------------------

void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : f.children()) FlattenAnd(*c, out);
    return;
  }
  out->push_back(&f);
}

bool CheckDomainIndependent(const Formula& f);

// An equality conjunct pins `var` when the other side's value is
// available without consulting the domain: a literal or a declared
// constant symbol.
bool EqualityPins(const Formula& eq, const std::string& var) {
  if (eq.kind() != Formula::Kind::kEquals) return false;
  const Term& l = eq.lhs();
  const Term& r = eq.rhs();
  auto pins = [&](const Term& v, const Term& t) {
    return v.is_variable() && v.name() == var &&
           (t.is_literal() || t.is_constant_symbol());
  };
  return pins(l, r) || pins(r, l);
}

// ∃vars.body (body in NNF): every var must be bound by a top-level
// positive atom conjunct or pinned by an equality, in every disjunct
// (∃ distributes over ∨). Conjuncts are then checked recursively.
bool ExistsDomainIndependent(const std::vector<std::string>& vars,
                             const Formula& body) {
  if (body.kind() == Formula::Kind::kOr) {
    for (const FormulaPtr& d : body.children()) {
      if (!ExistsDomainIndependent(vars, *d)) return false;
    }
    return true;
  }
  std::vector<const Formula*> conjuncts;
  FlattenAnd(body, &conjuncts);
  for (const std::string& var : vars) {
    bool bound = false;
    for (const Formula* c : conjuncts) {
      if (c->kind() == Formula::Kind::kAtom) {
        for (const Term& t : c->atom().terms) {
          if (t.is_variable() && t.name() == var) {
            bound = true;
            break;
          }
        }
      } else if (EqualityPins(*c, var)) {
        bound = true;
      }
      if (bound) break;
    }
    if (!bound) return false;
  }
  for (const Formula* c : conjuncts) {
    if (!CheckDomainIndependent(*c)) return false;
  }
  return true;
}

bool CheckDomainIndependent(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      return true;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        if (!CheckDomainIndependent(*c)) return false;
      }
      return true;
    }
    case Formula::Kind::kExists:
      return ExistsDomainIndependent(f.variables(), *f.children().front());
    case Formula::Kind::kForall: {
      // The evaluator computes ∀x.φ as ¬∃x.(¬φ in NNF); analyze the
      // same rewritten body it will actually enumerate.
      FormulaPtr neg = ToNNF(*Formula::Not(f.children().front()));
      return ExistsDomainIndependent(f.variables(), *neg);
    }
  }
  return false;
}

std::string RuleKindTag(DepNode::RuleKind kind) {
  switch (kind) {
    case DepNode::RuleKind::kOptions:
      return "options";
    case DepNode::RuleKind::kState:
      return "state";
    case DepNode::RuleKind::kAction:
      return "action";
    case DepNode::RuleKind::kTarget:
      return "target";
    case DepNode::RuleKind::kNone:
      break;
  }
  return "none";
}

std::string SymbolKindTag(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::kDatabase:
      return "database";
    case SymbolKind::kState:
      return "state";
    case SymbolKind::kInput:
      return "input";
    case SymbolKind::kAction:
      return "action";
    case SymbolKind::kPage:
      return "page";
  }
  return "unknown";
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

}  // namespace

bool IsDomainIndependent(const Formula& f) {
  // Normalize once so negations sit directly on atoms/equalities and
  // the conjunct scan above sees through double negations.
  return CheckDomainIndependent(*ToNNF(f));
}

DepGraph DepGraph::Build(const WebService& service) {
  DepGraph g;
  g.service_ = &service;

  std::map<std::string, int> rel_id;
  std::map<std::string, int> const_id;

  for (const RelationSymbol& sym : service.vocab().relations()) {
    DepNode node;
    node.kind = DepNodeKind::kRelation;
    node.symbol_kind = sym.kind;
    node.name = sym.name;
    node.span = sym.span;
    rel_id[sym.name] = static_cast<int>(g.nodes_.size());
    g.nodes_.push_back(std::move(node));
  }
  for (const std::string& c : service.vocab().constants()) {
    DepNode node;
    node.kind = DepNodeKind::kConstant;
    node.name = c;
    node.span = service.vocab().ConstantSpan(c);
    const_id[c] = static_cast<int>(g.nodes_.size());
    g.nodes_.push_back(std::move(node));
  }

  auto add_edge = [&](int from, int to) {
    if (from < 0 || to < 0 || from == to) return;
    g.nodes_[from].reads.push_back(to);
    g.nodes_[to].readers.push_back(from);
  };
  auto find_rel = [&](const std::string& name) {
    auto it = rel_id.find(name);
    return it == rel_id.end() ? -1 : it->second;
  };

  auto add_rule = [&](const std::string& page_name, DepNode::RuleKind kind,
                      int index, const std::string& label,
                      const std::string& head, const Formula& body,
                      Span span) {
    DepNode node;
    node.kind = DepNodeKind::kRule;
    node.rule_kind = kind;
    node.rule_index = index;
    node.name = label;
    node.page = page_name;
    node.head = head;
    node.span = span;
    node.domain_independent = IsDomainIndependent(body);
    int id = static_cast<int>(g.nodes_.size());
    g.nodes_.push_back(std::move(node));
    // A rule fires only while the run sits on its page.
    add_edge(id, find_rel(page_name));
    for (const std::string& rel : body.RelationNames()) {
      add_edge(id, find_rel(rel));
    }
    for (const std::string& c : body.ConstantSymbols()) {
      auto it = const_id.find(c);
      if (it != const_id.end()) add_edge(id, it->second);
    }
    return id;
  };

  for (const PageSchema& page : service.pages()) {
    for (size_t i = 0; i < page.input_rules.size(); ++i) {
      const InputRule& r = page.input_rules[i];
      int id = add_rule(page.name, DepNode::RuleKind::kOptions,
                        static_cast<int>(i),
                        page.name + "/options:" + r.input, r.input, *r.body,
                        r.span);
      add_edge(find_rel(r.input), id);
    }
    for (size_t i = 0; i < page.state_rules.size(); ++i) {
      const StateRule& r = page.state_rules[i];
      int id = add_rule(page.name, DepNode::RuleKind::kState,
                        static_cast<int>(i),
                        page.name + "/" + (r.insert ? "+" : "-") + r.state,
                        r.state, *r.body, r.span);
      add_edge(find_rel(r.state), id);
    }
    for (size_t i = 0; i < page.action_rules.size(); ++i) {
      const ActionRule& r = page.action_rules[i];
      int id = add_rule(page.name, DepNode::RuleKind::kAction,
                        static_cast<int>(i),
                        page.name + "/action:" + r.action, r.action, *r.body,
                        r.span);
      add_edge(find_rel(r.action), id);
    }
    for (size_t i = 0; i < page.target_rules.size(); ++i) {
      const TargetRule& r = page.target_rules[i];
      int id = add_rule(page.name, DepNode::RuleKind::kTarget,
                        static_cast<int>(i),
                        page.name + "/target:" + r.target, "", *r.body,
                        r.span);
      // Which page the run reaches depends on the targets leading there.
      add_edge(find_rel(r.target), id);
    }
  }

  // Dedupe adjacency lists and settle the edge count.
  g.num_edges_ = 0;
  for (DepNode& node : g.nodes_) {
    auto dedupe = [](std::vector<int>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedupe(&node.reads);
    dedupe(&node.readers);
    g.num_edges_ += node.reads.size();
  }
  WSV_COUNT("depgraph/nodes", g.nodes_.size());
  WSV_COUNT("depgraph/edges", g.num_edges_);
  return g;
}

int DepGraph::FindRelation(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DepNodeKind::kRelation && nodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int DepGraph::FindConstant(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DepNodeKind::kConstant && nodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

std::vector<char> Closure(const std::vector<DepNode>& nodes,
                          const std::vector<int>& seeds,
                          std::vector<int> DepNode::*edges) {
  std::vector<char> reached(nodes.size(), 0);
  std::deque<int> queue;
  for (int s : seeds) {
    if (s >= 0 && s < static_cast<int>(nodes.size()) && !reached[s]) {
      reached[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    int n = queue.front();
    queue.pop_front();
    for (int next : nodes[n].*edges) {
      if (!reached[next]) {
        reached[next] = 1;
        queue.push_back(next);
      }
    }
  }
  return reached;
}

}  // namespace

std::vector<char> DepGraph::BackwardCone(const std::vector<int>& seeds) const {
  return Closure(nodes_, seeds, &DepNode::reads);
}

std::vector<char> DepGraph::ForwardReach(const std::vector<int>& seeds) const {
  return Closure(nodes_, seeds, &DepNode::readers);
}

std::vector<int> DepGraph::PropertySeeds(
    const TemporalProperty& property) const {
  std::set<int> seeds;
  for (const FormulaPtr& leaf : property.formula->FoLeaves()) {
    for (const std::string& rel : leaf->RelationNames()) {
      int id = FindRelation(rel);
      if (id >= 0) seeds.insert(id);
    }
    for (const std::string& c : leaf->ConstantSymbols()) {
      int id = FindConstant(c);
      if (id >= 0) seeds.insert(id);
    }
  }
  return std::vector<int>(seeds.begin(), seeds.end());
}

std::vector<int> DepGraph::TargetSeeds() const {
  std::vector<int> seeds;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].rule_kind == DepNode::RuleKind::kTarget) {
      seeds.push_back(static_cast<int>(i));
    }
  }
  return seeds;
}

bool DepGraph::PropertyDomainIndependent(
    const TemporalProperty& property) const {
  for (const FormulaPtr& leaf : property.formula->FoLeaves()) {
    if (!IsDomainIndependent(*leaf)) return false;
  }
  return true;
}

std::string DepGraph::ToDot(const std::vector<char>& in_cone) const {
  std::ostringstream out;
  out << "digraph deps {\n";
  out << "  rankdir=LR;\n";
  out << "  // edge A -> B: A depends on (reads) B\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const DepNode& n = nodes_[i];
    const char* shape = "ellipse";
    if (n.kind == DepNodeKind::kConstant) shape = "diamond";
    if (n.kind == DepNodeKind::kRule) shape = "box";
    if (n.kind == DepNodeKind::kRelation && n.symbol_kind == SymbolKind::kPage)
      shape = "house";
    bool cone = i < in_cone.size() && in_cone[i];
    out << "  n" << i << " [label=\"" << n.name << "\", shape=" << shape;
    if (cone) out << ", style=filled, fillcolor=lightgoldenrod";
    out << "];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int to : nodes_[i].reads) {
      out << "  n" << i << " -> n" << to << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string DepGraph::ToJson(const std::vector<char>& in_cone) const {
  std::string out;
  out += "{\n  \"service\": \"";
  AppendJsonEscaped(service_->name(), &out);
  out += "\",\n  \"nodes\": [\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const DepNode& n = nodes_[i];
    out += "    {\"id\": " + std::to_string(i) + ", \"kind\": \"";
    switch (n.kind) {
      case DepNodeKind::kRelation:
        out += "relation";
        break;
      case DepNodeKind::kConstant:
        out += "constant";
        break;
      case DepNodeKind::kRule:
        out += "rule";
        break;
    }
    out += "\", \"name\": \"";
    AppendJsonEscaped(n.name, &out);
    out += "\"";
    if (n.kind == DepNodeKind::kRelation) {
      out += ", \"symbol_kind\": \"" + SymbolKindTag(n.symbol_kind) + "\"";
    }
    if (n.kind == DepNodeKind::kRule) {
      out += ", \"rule_kind\": \"" + RuleKindTag(n.rule_kind) + "\"";
      out += ", \"page\": \"";
      AppendJsonEscaped(n.page, &out);
      out += "\"";
      out += n.domain_independent ? ", \"domain_independent\": true"
                                  : ", \"domain_independent\": false";
    }
    if (n.span.IsValid()) {
      out += ", \"span\": {\"line\": " + std::to_string(n.span.line) +
             ", \"column\": " + std::to_string(n.span.column) + "}";
    } else {
      out += ", \"span\": null";
    }
    if (!in_cone.empty()) {
      out += (i < in_cone.size() && in_cone[i]) ? ", \"in_cone\": true"
                                                : ", \"in_cone\": false";
    }
    out += "}";
    if (i + 1 < nodes_.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"edges\": [\n";
  bool first = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int to : nodes_[i].reads) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\"from\": " + std::to_string(i) +
             ", \"to\": " + std::to_string(to) + "}";
    }
  }
  out += "\n  ],\n  \"summary\": {\"nodes\": " + std::to_string(nodes_.size()) +
         ", \"edges\": " + std::to_string(num_edges_);
  if (!in_cone.empty()) {
    uint64_t cone = 0;
    for (char c : in_cone) cone += c ? 1 : 0;
    out += ", \"cone_nodes\": " + std::to_string(cone);
  }
  out += "}\n}\n";
  return out;
}

}  // namespace analysis
}  // namespace wsv
