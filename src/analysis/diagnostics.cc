#include "analysis/diagnostics.h"

#include <algorithm>
#include <cctype>

namespace wsv {
namespace analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

void DiagnosticSink::Report(std::string rule_id, Severity severity, Span span,
                            std::string message, std::string hint,
                            std::string anchor, std::string page) {
  Diagnostic d;
  d.rule_id = std::move(rule_id);
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.hint = std::move(hint);
  d.anchor = std::move(anchor);
  d.page = std::move(page);
  diagnostics_.push_back(std::move(d));
}

void DiagnosticSink::SortBySpan() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Valid spans first, in source order.
                     if (a.span.IsValid() != b.span.IsValid()) {
                       return a.span.IsValid();
                     }
                     return a.span < b.span;
                   });
}

size_t DiagnosticSink::Count(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

const std::vector<RuleInfo>& RuleRegistry() {
  static const std::vector<RuleInfo>* kRules = new std::vector<RuleInfo>{
      {"WSV-PARSE-001", Severity::kError,
       "specification does not parse", "", "LintSpecText"},
      {"WSV-VAL-001", Severity::kError,
       "unknown or undeclared symbol", "Definition 2.1",
       "ValidateServiceDiagnostics"},
      {"WSV-VAL-002", Severity::kError, "rule head arity mismatch",
       "Definition 2.1", "ValidateServiceDiagnostics"},
      {"WSV-VAL-003", Severity::kError,
       "free body variable not bound by the rule head", "Definition 2.1",
       "ValidateServiceDiagnostics"},
      {"WSV-VAL-004", Severity::kError, "duplicate or miscounted rules",
       "Definition 2.1", "ValidateServiceDiagnostics"},
      {"WSV-VAL-005", Severity::kError,
       "atom kind not permitted in this rule body", "Definition 2.1",
       "ValidateServiceDiagnostics"},
      {"WSV-VAL-006", Severity::kError,
       "home/error/page structure violates the service definition",
       "Definition 2.1", "ValidateServiceDiagnostics"},
      {"WSV-VAL-007", Severity::kError,
       "target rule body is not a sentence", "Definition 2.1",
       "ValidateServiceDiagnostics"},
      {"WSV-VAL-008", Severity::kError, "repeated head variable",
       "Definition 2.1", "ValidateServiceDiagnostics"},
      {"WSV-IB-001", Severity::kNote,
       "quantification is not input-guarded", "Theorem 3.5",
       "CollectInputBoundedDiagnostics"},
      {"WSV-IB-002", Severity::kNote,
       "non-ground state atom in an options rule", "Theorem 3.7",
       "CollectInputBoundedDiagnostics"},
      {"WSV-IB-003", Severity::kNote,
       "quantified variable occurs in a state/action atom (state projection)",
       "Theorem 3.8", "CollectInputBoundedDiagnostics"},
      {"WSV-IB-004", Severity::kWarning,
       "prev input atom never fed by a predecessor page (assumes lossless "
       "prev_I)",
       "Theorem 3.9", "LintLosslessPrev"},
      {"WSV-CLS-001", Severity::kNote,
       "state/action relation is not propositional", "Theorem 4.4",
       "CollectPropositionalDiagnostics"},
      {"WSV-CLS-002", Severity::kNote,
       "Prev_I atom not permitted in propositional services",
       "Theorem 4.4", "CollectPropositionalDiagnostics"},
      {"WSV-CLS-003", Severity::kNote,
       "parameterized input or input constant in a fully propositional "
       "service",
       "Theorem 4.6", "CollectFullyPropositionalDiagnostics"},
      {"WSV-CLS-004", Severity::kNote,
       "database atom in a fully propositional service", "Theorem 4.6",
       "CollectFullyPropositionalDiagnostics"},
      {"WSV-NAV-001", Severity::kWarning,
       "page unreachable from the home page", "", "LintUnreachablePages"},
      {"WSV-NAV-002", Severity::kWarning,
       "syntactically overlapping target rules (nondeterministic "
       "navigation)",
       "", "LintOverlappingTargets"},
      {"WSV-DEAD-001", Severity::kWarning,
       "state relation read but never written", "", "LintDeadSymbols"},
      {"WSV-DEAD-002", Severity::kNote,
       "state relation written but never read", "", "LintDeadSymbols"},
      {"WSV-DEAD-003", Severity::kWarning,
       "declared input or constant never used", "", "LintDeadSymbols"},
      {"WSV-DEAD-004", Severity::kWarning,
       "action relation has no action rule", "", "LintDeadSymbols"},
      {"WSV-DEAD-005", Severity::kNote,
       "database relation never referenced", "", "LintDeadSymbols"},
      {"WSV-DEP-001", Severity::kNote,
       "input can never influence navigation or actions (dependence cone)",
       "", "LintDepGraph"},
      {"WSV-DEP-002", Severity::kNote,
       "state relation written but transitively unread by any target or "
       "action",
       "", "LintDepGraph"},
      {"WSV-DOM-001", Severity::kWarning,
       "literal input atom outside the page's options domain", "",
       "LintOptionsDomain"},
  };
  return *kRules;
}

const RuleInfo* FindRule(const std::string& id) {
  for (const RuleInfo& rule : RuleRegistry()) {
    if (id == rule.id) return &rule;
  }
  return nullptr;
}

Span SpanFromMessage(const std::string& message) {
  // The lexer and parsers phrase locations as "... at line N, column M".
  static const char kLine[] = "line ";
  static const char kColumn[] = "column ";
  size_t pos = message.rfind(kLine);
  if (pos == std::string::npos) return Span{};
  size_t p = pos + sizeof(kLine) - 1;
  int line = 0;
  while (p < message.size() && std::isdigit(message[p])) {
    line = line * 10 + (message[p] - '0');
    ++p;
  }
  if (line == 0) return Span{};
  size_t cpos = message.find(kColumn, p);
  int column = 1;
  if (cpos != std::string::npos) {
    p = cpos + sizeof(kColumn) - 1;
    int col = 0;
    while (p < message.size() && std::isdigit(message[p])) {
      col = col * 10 + (message[p] - '0');
      ++p;
    }
    if (col > 0) column = col;
  }
  return Span{line, column, line, column + 1};
}

}  // namespace analysis
}  // namespace wsv
