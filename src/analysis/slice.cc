#include "analysis/slice.h"

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.h"
#include "obs/metrics.h"

namespace wsv {
namespace analysis {

namespace {

std::atomic<bool> g_enabled{true};
thread_local int t_disable_depth = 0;

bool DisabledByEnv() {
  static const bool disabled = std::getenv("WSV_DISABLE_SLICE") != nullptr;
  return disabled;
}

// Input constants a rule body mentions; dropping a rule must not shrink
// the per-page set the stepper's static-error condition (i) scans.
std::set<std::string> BodyInputConstants(const Vocabulary& vocab,
                                         const Formula& body) {
  std::set<std::string> out;
  for (const std::string& c : body.ConstantSymbols()) {
    if (vocab.IsInputConstant(c)) out.insert(c);
  }
  return out;
}

}  // namespace

bool SliceEnabled() {
  if (DisabledByEnv()) return false;
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  return t_disable_depth == 0;
}

void SetSliceEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedDisableSlice::ScopedDisableSlice() { ++t_disable_depth; }
ScopedDisableSlice::~ScopedDisableSlice() { --t_disable_depth; }

SliceResult SlicePropertyCone(const WebService& service,
                              const TemporalProperty& property) {
  SliceResult result;
  DepGraph graph = DepGraph::Build(service);

  // A domain-dependent property leaf can observe any relation through
  // the active domain — the cone is the whole spec.
  if (!graph.PropertyDomainIndependent(property)) {
    WSV_COUNT1("slice/domain_bailouts");
    return result;
  }

  std::vector<int> seeds = graph.PropertySeeds(property);
  std::vector<int> targets = graph.TargetSeeds();
  seeds.insert(seeds.end(), targets.begin(), targets.end());
  std::vector<char> cone = graph.BackwardCone(seeds);

  const std::vector<DepNode>& nodes = graph.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!cone[i]) continue;
    // An in-cone rule with a domain-dependent body may read dropped
    // relations through the active domain; bail to the identity.
    if (nodes[i].kind == DepNodeKind::kRule && !nodes[i].domain_independent) {
      WSV_COUNT1("slice/domain_bailouts");
      return result;
    }
    if (nodes[i].kind == DepNodeKind::kRelation) ++result.cone_relations;
  }

  // Rule node lookup: (page, rule kind, index) -> in cone?
  auto rule_in_cone = [&](const std::string& page, DepNode::RuleKind kind,
                          int index) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].rule_kind == kind && nodes[i].rule_index == index &&
          nodes[i].page == page) {
        return cone[i] != 0;
      }
    }
    return true;  // unknown: keep (conservative)
  };
  auto input_in_cone = [&](const std::string& input) {
    int id = graph.FindRelation(input);
    return id < 0 || cone[id] != 0;
  };

  const Vocabulary& vocab = service.vocab();
  auto sliced = std::make_unique<WebService>();
  sliced->set_name(service.name());
  sliced->mutable_vocab() = vocab;

  for (const PageSchema& page : service.pages()) {
    PageSchema out;
    out.name = page.name;
    out.span = page.span;
    out.input_constants = page.input_constants;
    out.actions = page.actions;
    out.targets = page.targets;
    // All target rules are kept: the page sequence is always observable.
    out.target_rules = page.target_rules;

    for (const std::string& input : page.inputs) {
      if (input_in_cone(input)) {
        out.inputs.push_back(input);
      } else {
        ++result.inputs_dropped;
      }
    }

    // Keep a rule when its head is in the cone; collect the rest as
    // droppable, subject to input-constant coverage below.
    std::vector<const InputRule*> dropped_input_rules;
    std::vector<const StateRule*> dropped_state_rules;
    std::vector<const ActionRule*> dropped_action_rules;
    std::set<std::string> covered;  // input constants used by kept rules
    auto note_kept = [&](const Formula& body) {
      std::set<std::string> used = BodyInputConstants(vocab, body);
      covered.insert(used.begin(), used.end());
    };
    for (size_t i = 0; i < page.input_rules.size(); ++i) {
      const InputRule& r = page.input_rules[i];
      if (rule_in_cone(page.name, DepNode::RuleKind::kOptions,
                       static_cast<int>(i))) {
        out.input_rules.push_back(r);
        note_kept(*r.body);
      } else {
        dropped_input_rules.push_back(&r);
      }
    }
    for (size_t i = 0; i < page.state_rules.size(); ++i) {
      const StateRule& r = page.state_rules[i];
      if (rule_in_cone(page.name, DepNode::RuleKind::kState,
                       static_cast<int>(i))) {
        out.state_rules.push_back(r);
        note_kept(*r.body);
      } else {
        dropped_state_rules.push_back(&r);
      }
    }
    for (size_t i = 0; i < page.action_rules.size(); ++i) {
      const ActionRule& r = page.action_rules[i];
      if (rule_in_cone(page.name, DepNode::RuleKind::kAction,
                       static_cast<int>(i))) {
        out.action_rules.push_back(r);
        note_kept(*r.body);
      } else {
        dropped_action_rules.push_back(&r);
      }
    }
    for (const TargetRule& r : page.target_rules) note_kept(*r.body);

    // Static-error condition (i) scans *every* rule body on the page
    // for input constants used before provision; dropping a rule must
    // not shrink that set. Re-retain dropped rules until the kept set
    // covers the original one. Retained rules stay out of the cone —
    // their head content is unobservable — so this never pulls body
    // relations back in.
    auto needs_retain = [&](const Formula& body) {
      std::set<std::string> used = BodyInputConstants(vocab, body);
      for (const std::string& c : used) {
        if (covered.count(c) == 0) return true;
      }
      return false;
    };
    auto retain_pass = [&]() {
      bool retained = false;
      for (auto it = dropped_input_rules.begin();
           it != dropped_input_rules.end();) {
        if (needs_retain(*(*it)->body)) {
          out.input_rules.push_back(**it);
          note_kept(*(*it)->body);
          it = dropped_input_rules.erase(it);
          retained = true;
        } else {
          ++it;
        }
      }
      for (auto it = dropped_state_rules.begin();
           it != dropped_state_rules.end();) {
        if (needs_retain(*(*it)->body)) {
          out.state_rules.push_back(**it);
          note_kept(*(*it)->body);
          it = dropped_state_rules.erase(it);
          retained = true;
        } else {
          ++it;
        }
      }
      for (auto it = dropped_action_rules.begin();
           it != dropped_action_rules.end();) {
        if (needs_retain(*(*it)->body)) {
          out.action_rules.push_back(**it);
          note_kept(*(*it)->body);
          it = dropped_action_rules.erase(it);
          retained = true;
        } else {
          ++it;
        }
      }
      return retained;
    };
    while (retain_pass()) {
    }

    // A retained options rule for a dropped input feeds an offer that
    // no longer exists; the stepper still evaluates it (harmlessly) via
    // ComputeOptions, so nothing further to fix up.
    result.rules_dropped += dropped_input_rules.size() +
                            dropped_state_rules.size() +
                            dropped_action_rules.size();
    Status st = sliced->AddPage(std::move(out));
    (void)st;  // duplicate pages are impossible: copied from a valid service
  }
  sliced->set_home_page(service.home_page(), service.home_span());
  sliced->set_error_page(service.error_page(), service.error_span());

  for (const RelationSymbol& sym : vocab.relations()) {
    if (sym.kind != SymbolKind::kState && sym.kind != SymbolKind::kInput &&
        sym.kind != SymbolKind::kAction) {
      continue;
    }
    int id = graph.FindRelation(sym.name);
    if (id >= 0 && !cone[id]) ++result.relations_dropped;
  }

  if (result.rules_dropped == 0 && result.inputs_dropped == 0) {
    // Identity slice: hand the caller nothing so it runs the original
    // single-phase check.
    return SliceResult{nullptr, 0, 0, 0, result.cone_relations};
  }

  WSV_COUNT("slice/relations_dropped", result.relations_dropped);
  WSV_COUNT("slice/rules_dropped", result.rules_dropped);
  WSV_COUNT("slice/inputs_dropped", result.inputs_dropped);
  WSV_COUNT("slice/cone_size", result.cone_relations);
  WSV_COUNT1("slice/sliced");
  result.service = std::move(sliced);
  return result;
}

}  // namespace analysis
}  // namespace wsv
