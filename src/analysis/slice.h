// Property-directed spec slicer (cone-of-influence reduction).
//
// SlicePropertyCone computes the backward cone of a property's FO atoms
// over the dependence graph (depgraph.h) and builds a reduced copy of
// the service with every rule outside the cone dropped. The reduction
// is *frame-preserving*: vocabulary, pages, page spans, targets, all
// target rules, requested input constants, and home/error pages are
// untouched, and dropped relations stay declared (the runtime
// materializes them empty). Configurations that differed only in
// out-of-cone content therefore merge, shrinking the configuration
// graph and every product built over it, while:
//
//   * the page sequence of every run is unchanged (target rules and
//     everything they read are always in the cone; rules whose body
//     mentions an input constant are retained so the stepper's
//     static-error conditions fire identically);
//   * every relation a property leaf can observe is in the cone, so
//     leaf truth values are unchanged;
//   * accepting lassos exist in the sliced graph iff they exist in the
//     full graph (the sliced graph is a quotient of the full one).
//
// Witness faithfulness (the Dom(ρ) check of Thm 4.2) is *not* preserved
// per-valuation — the verifier handles that by re-running the full spec
// from the first sliced lasso (see ltl_verifier.cc). Properties or
// in-cone rules that fail the domain-independence analysis void the
// reduction; SlicePropertyCone then returns the identity (null).
#ifndef WSV_ANALYSIS_SLICE_H_
#define WSV_ANALYSIS_SLICE_H_

#include <cstdint>
#include <memory>

#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {
namespace analysis {

struct SliceResult {
  /// The reduced service, or null when the slice is the identity
  /// (nothing droppable, slicing disabled, or analysis bailed out).
  std::unique_ptr<WebService> service;
  uint64_t relations_dropped = 0;  // state/input/action symbols out of cone
  uint64_t rules_dropped = 0;
  uint64_t inputs_dropped = 0;  // page-input offers removed
  uint64_t cone_relations = 0;  // relation nodes in the cone
};

/// Slices `service` against `property`. Never fails: bails to the
/// identity (null service) whenever the reduction cannot be justified.
SliceResult SlicePropertyCone(const WebService& service,
                              const TemporalProperty& property);

/// Process-wide gate, mirroring fobc::BytecodeEnabled:
///   * environment: WSV_DISABLE_SLICE=1 disables for the process;
///   * process-wide: SetSliceEnabled(false) (the CLI's --no-slice);
///   * per-thread, scoped: ScopedDisableSlice (used by the differential
///     tests and the in-process A/B benchmark rows).
bool SliceEnabled();
void SetSliceEnabled(bool enabled);

class ScopedDisableSlice {
 public:
  ScopedDisableSlice();
  ~ScopedDisableSlice();
  ScopedDisableSlice(const ScopedDisableSlice&) = delete;
  ScopedDisableSlice& operator=(const ScopedDisableSlice&) = delete;
};

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_SLICE_H_
