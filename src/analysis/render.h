// Renderers for diagnostics: annotated source text, JSON, and SARIF.
//
// All three renderers take the original specification source so they can
// quote the offending line (text) or report accurate artifact locations
// (SARIF). Diagnostics are rendered in the order given; callers usually
// SortBySpan() first.

#ifndef WSV_ANALYSIS_RENDER_H_
#define WSV_ANALYSIS_RENDER_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"

namespace wsv {
namespace analysis {

/// Compiler-style annotated output:
///
///   specs/bad/thm37.wsd:12:9: note: state atom cart(x) is not ground
///     state +cart(x) :- pick(x);
///            ^~~~
///       = hint: ground the state atom or bind x by an input option
///       = anchor: Theorem 3.7
///
/// followed by a one-line summary ("2 errors, 1 warning, 3 notes").
std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       const std::string& source, const std::string& path);

/// One JSON object:
///   {"file": ..., "diagnostics": [{"rule": ..., "severity": ...,
///    "line": ..., "column": ..., "message": ..., "hint": ...,
///    "anchor": ..., "page": ...}, ...],
///    "summary": {"errors": N, "warnings": N, "notes": N}}
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& path);

/// SARIF 2.1.0 log with one run; rule metadata is synthesized from the
/// distinct rule IDs present in `diagnostics`.
std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        const std::string& path);

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_RENDER_H_
