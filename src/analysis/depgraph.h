// Whole-spec dependence graph and property cone queries.
//
// Nodes are the spec's relation symbols (database, state, input, action,
// and page propositions), its declared constants, and every rule
// (options/state/action/target), each carrying the source span of its
// declaration. Edges point from a node to the nodes it *reads*:
//
//   rule        -> every relation named in its body (prev atoms resolve
//                  to the base relation), every constant symbol it uses,
//                  and the page it belongs to (a rule only fires while
//                  the run sits on its page);
//   state/action relation -> the rules whose head writes it;
//   input relation        -> its options rules (the user picks from the
//                            computed option set);
//   page        -> the target rules that navigate *into* it.
//
// The backward closure of a property's FO atoms over these edges is the
// property's cone of influence: everything outside it can be dropped
// from the spec without changing what the property can observe (see
// slice.h and DESIGN.md §10). The forward closure powers the
// WSV-DEP-00x lints (symbols that can never influence navigation or an
// action) and cache invalidation (cache/invalidate.cc).
#ifndef WSV_ANALYSIS_DEPGRAPH_H_
#define WSV_ANALYSIS_DEPGRAPH_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "fo/formula.h"
#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {
namespace analysis {

enum class DepNodeKind { kRelation, kConstant, kRule };

struct DepNode {
  enum class RuleKind { kNone, kOptions, kState, kAction, kTarget };

  DepNodeKind kind = DepNodeKind::kRelation;
  /// Valid for kRelation nodes (page propositions report kPage).
  SymbolKind symbol_kind = SymbolKind::kDatabase;
  /// Relation/constant name; for rules, a stable display label like
  /// "CP/+cart" or "PP/target:CCP".
  std::string name;
  /// Owning page name for rule nodes; empty otherwise.
  std::string page;
  /// Declaration span (relation decl, constant decl, or rule head).
  Span span;
  /// Rule locator: kind + index into the owning page's rule vector.
  RuleKind rule_kind = RuleKind::kNone;
  int rule_index = -1;
  /// For rule nodes: the head relation written ("" for target rules,
  /// whose observable effect is the page transition itself).
  std::string head;
  /// For rule nodes: whether the body passed the domain-independence
  /// analysis (IsDomainIndependent). A domain-dependent body reads the
  /// whole active domain, so its cone is the entire spec.
  bool domain_independent = true;

  /// Edges: nodes this node depends on / nodes depending on this node.
  std::vector<int> reads;
  std::vector<int> readers;
};

class DepGraph {
 public:
  /// Builds the dependence graph for `service`. The service must outlive
  /// the graph.
  static DepGraph Build(const WebService& service);

  const WebService& service() const { return *service_; }
  const std::vector<DepNode>& nodes() const { return nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Node id of a relation / constant, or -1 when not declared.
  int FindRelation(const std::string& name) const;
  int FindConstant(const std::string& name) const;

  /// Backward closure over `reads` edges; returns one flag per node.
  std::vector<char> BackwardCone(const std::vector<int>& seeds) const;
  /// Forward closure over `readers` edges.
  std::vector<char> ForwardReach(const std::vector<int>& seeds) const;

  /// Seed nodes for a property: the relation, page, and constant
  /// symbols named by its FO leaves (prev atoms resolve to the base
  /// relation). Names not declared in the vocabulary are ignored.
  std::vector<int> PropertySeeds(const TemporalProperty& property) const;
  /// Seed nodes for the navigation frame: every target-rule node. The
  /// page sequence of a run is always observable (error-page routing,
  /// property page atoms), so target rules and everything they read are
  /// in every property's cone.
  std::vector<int> TargetSeeds() const;

  /// True iff every FO leaf of `property` is domain-independent (its
  /// truth depends only on the relations it names, never on the ambient
  /// active domain). A domain-dependent leaf voids cone reasoning: its
  /// quantifiers range over values contributed by *every* relation.
  bool PropertyDomainIndependent(const TemporalProperty& property) const;

  /// Renders the graph for `wsvcli deps`. `in_cone` may be empty (no
  /// cone highlighting) or one flag per node.
  std::string ToDot(const std::vector<char>& in_cone) const;
  std::string ToJson(const std::vector<char>& in_cone) const;

 private:
  const WebService* service_ = nullptr;
  std::vector<DepNode> nodes_;
  uint64_t num_edges_ = 0;
};

/// Domain-independence of one FO formula: under the evaluator's
/// guard-driven quantifier strategy, a formula is domain-independent
/// when every quantified variable is either bound by a top-level
/// positive atom conjunct (witnesses come from relation contents) or
/// pinned by an equality against a literal or constant symbol, in every
/// disjunct; ∀ is analyzed through the evaluator's own rewrite
/// ∀x.φ ≡ ¬∃x.¬φ (NNF). Conservative: returns false when unsure.
bool IsDomainIndependent(const Formula& f);

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_DEPGRAPH_H_
