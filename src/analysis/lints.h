// Lint passes over a parsed Web service specification.
//
// Beyond well-formedness (ws/validate.h) and fragment membership
// (ws/classify.h), these passes flag specifications that are legal but
// almost certainly wrong, and explain — with theorem anchors — where a
// specification crosses the decidability frontier of Section 3.
//
// The authoritative rule list lives in ONE place: RuleRegistry() in
// analysis/diagnostics.cc, which records each rule's ID, severity,
// paper anchor, and emitting pass. Do not restate rule IDs here —
// earlier revisions of this comment drifted from the registry, and
// tests/analysis_test.cc now checks the registry against the passes
// instead. DESIGN.md §7 renders the same registry for humans.
//
// RunAllLints assumes a structurally complete service (parsed, possibly
// invalid); every pass is defensive about missing symbols so it can run
// after validation errors and still report what it can.

#ifndef WSV_ANALYSIS_LINTS_H_
#define WSV_ANALYSIS_LINTS_H_

#include <string_view>

#include "analysis/diagnostics.h"
#include "ws/service.h"

namespace wsv {
namespace analysis {

/// Runs every lint pass (WSV-IB-*, WSV-NAV-*, WSV-DEAD-*, WSV-DEP-*,
/// WSV-DOM-*; see RuleRegistry() for the full list).
void RunAllLints(const WebService& service, DiagnosticSink* sink);

/// One-stop linting of specification text: parses (WSV-PARSE-001 on
/// failure), validates (WSV-VAL-*), and runs all lint passes. Findings
/// arrive in the sink sorted into source order.
void LintSpecText(std::string_view source, DiagnosticSink* sink);

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_LINTS_H_
