// Lint passes over a parsed Web service specification.
//
// Beyond well-formedness (ws/validate.h) and fragment membership
// (ws/classify.h), these passes flag specifications that are legal but
// almost certainly wrong, and explain — with theorem anchors — where a
// specification crosses the decidability frontier of Section 3:
//
//   WSV-IB-001..003  undecidability traps (Theorems 3.5/3.7/3.8)
//   WSV-IB-004       reliance on lossless prev_I (Theorem 3.9): a prev.I
//                    atom on a page none of whose predecessors offers I
//   WSV-NAV-001      page unreachable from the home page
//   WSV-NAV-002      target rules not provably disjoint (nondeterministic
//                    navigation)
//   WSV-DEAD-001/002 state relations read-never-written / written-never-read
//   WSV-DEAD-003     declared inputs and constants never used
//   WSV-DEAD-004     action relations without action rules
//   WSV-DEAD-005     database relations never referenced
//   WSV-DOM-001      literal input atom outside the page's options domain
//
// RunAllLints assumes a structurally complete service (parsed, possibly
// invalid); every pass is defensive about missing symbols so it can run
// after validation errors and still report what it can.

#ifndef WSV_ANALYSIS_LINTS_H_
#define WSV_ANALYSIS_LINTS_H_

#include <string_view>

#include "analysis/diagnostics.h"
#include "ws/service.h"

namespace wsv {
namespace analysis {

/// Runs every lint pass (WSV-IB-*, WSV-NAV-*, WSV-DEAD-*, WSV-DOM-*).
void RunAllLints(const WebService& service, DiagnosticSink* sink);

/// One-stop linting of specification text: parses (WSV-PARSE-001 on
/// failure), validates (WSV-VAL-*), and runs all lint passes. Findings
/// arrive in the sink sorted into source order.
void LintSpecText(std::string_view source, DiagnosticSink* sink);

}  // namespace analysis
}  // namespace wsv

#endif  // WSV_ANALYSIS_LINTS_H_
