// Relations and relational instances (Section 2).
//
// A relational instance maps each relation symbol to a finite relation,
// each proposition to a truth value (arity-0 relation that is empty or
// contains the empty tuple), and each constant symbol to a domain element.
// Instances use ordered containers throughout so that equal instances
// compare equal structurally — the model checkers deduplicate
// configurations by comparing state instances.

#ifndef WSV_RELATIONAL_INSTANCE_H_
#define WSV_RELATIONAL_INSTANCE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace wsv {

/// A finite relation of fixed arity over the interned value domain.
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; returns false (and ignores it) on arity mismatch.
  bool Insert(const Tuple& t);
  /// Removes a tuple if present.
  void Erase(const Tuple& t);
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  void Clear() { tuples_.clear(); }

  const std::set<Tuple>& tuples() const { return tuples_; }

  /// Proposition helpers (arity 0): truth == contains the empty tuple.
  bool AsBool() const { return !tuples_.empty(); }
  void SetBool(bool b);

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }
  friend bool operator<(const Relation& a, const Relation& b) {
    if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
    return a.tuples_ < b.tuples_;
  }

  /// Structural hash, consistent with operator== (the tuple set is
  /// ordered, so iteration order is canonical).
  size_t Hash() const;

  /// Estimated heap footprint (set nodes + tuple storage). Used by the
  /// mem/* occupancy gauges; coarse by design.
  size_t ApproxBytes() const;

  std::string ToString() const;

 private:
  int arity_;
  std::set<Tuple> tuples_;
};

/// A relational instance: named relations, constant interpretations, and
/// an explicit domain. The domain always contains every value occurring in
/// a relation or constant interpretation, and may contain extra elements
/// (the paper's Dom may be a superset of the values actually used).
class Instance {
 public:
  Instance() = default;

  /// Creates (or returns) the relation named `name` with the given arity.
  /// Fails if the name exists with a different arity.
  Status EnsureRelation(const std::string& name, int arity);

  /// The relation named `name`; nullptr if absent.
  const Relation* FindRelation(const std::string& name) const;
  Relation* MutableRelation(const std::string& name);

  /// Inserts a fact R(t), creating R with t's arity if needed. Values in t
  /// are added to the domain.
  Status AddFact(const std::string& name, const Tuple& t);

  /// Sets the interpretation of a constant symbol; adds to the domain.
  void SetConstant(const std::string& name, Value v);
  std::optional<Value> FindConstant(const std::string& name) const;

  /// Adds a bare element to the domain.
  void AddDomainValue(Value v) { domain_.insert(v); }

  const std::set<Value>& domain() const { return domain_; }
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }
  const std::map<std::string, Value>& constants() const { return constants_; }

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_ && a.constants_ == b.constants_ &&
           a.domain_ == b.domain_;
  }
  friend bool operator<(const Instance& a, const Instance& b) {
    if (a.relations_ != b.relations_) return a.relations_ < b.relations_;
    if (a.constants_ != b.constants_) return a.constants_ < b.constants_;
    return a.domain_ < b.domain_;
  }

  /// Structural hash, consistent with operator== (all members are ordered
  /// containers, so iteration order is canonical).
  size_t Hash() const;

  /// Estimated heap footprint across relations, constants, and domain.
  size_t ApproxBytes() const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
  std::map<std::string, Value> constants_;
  std::set<Value> domain_;
};

}  // namespace wsv

#endif  // WSV_RELATIONAL_INSTANCE_H_
