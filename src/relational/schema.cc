#include "relational/schema.h"

#include "common/str_util.h"

namespace wsv {

const char* SymbolKindToString(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::kDatabase:
      return "database";
    case SymbolKind::kState:
      return "state";
    case SymbolKind::kInput:
      return "input";
    case SymbolKind::kAction:
      return "action";
    case SymbolKind::kPage:
      return "page";
  }
  return "unknown";
}

Status Vocabulary::AddRelation(const std::string& name, int arity,
                               SymbolKind kind, Span span) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("relation name is not an identifier: '" +
                                   name + "'");
  }
  if (arity < 0) {
    return Status::InvalidArgument("negative arity for relation " + name);
  }
  if (relation_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation symbol: " + name);
  }
  if (constant_is_input_.count(name) > 0) {
    return Status::InvalidArgument("name already used by a constant: " + name);
  }
  relation_index_[name] = relations_.size();
  relations_.push_back(RelationSymbol{name, arity, kind, span});
  return Status::OK();
}

Status Vocabulary::AddConstant(const std::string& name,
                               bool is_input_constant, Span span) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("constant name is not an identifier: '" +
                                   name + "'");
  }
  if (relation_index_.count(name) > 0) {
    return Status::InvalidArgument("name already used by a relation: " + name);
  }
  if (constant_is_input_.count(name) > 0) {
    return Status::InvalidArgument("duplicate constant symbol: " + name);
  }
  constant_is_input_[name] = is_input_constant;
  constant_span_[name] = span;
  constants_.push_back(name);
  return Status::OK();
}

Span Vocabulary::ConstantSpan(const std::string& name) const {
  auto it = constant_span_.find(name);
  return it == constant_span_.end() ? Span{} : it->second;
}

const RelationSymbol* Vocabulary::FindRelation(const std::string& name) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) return nullptr;
  return &relations_[it->second];
}

bool Vocabulary::IsConstant(const std::string& name) const {
  return constant_is_input_.count(name) > 0;
}

bool Vocabulary::IsInputConstant(const std::string& name) const {
  auto it = constant_is_input_.find(name);
  return it != constant_is_input_.end() && it->second;
}

std::vector<RelationSymbol> Vocabulary::RelationsOfKind(
    SymbolKind kind) const {
  std::vector<RelationSymbol> out;
  for (const RelationSymbol& sym : relations_) {
    if (sym.kind == kind) out.push_back(sym);
  }
  return out;
}

std::vector<std::string> Vocabulary::InputConstants() const {
  std::vector<std::string> out;
  for (const std::string& c : constants_) {
    if (IsInputConstant(c)) out.push_back(c);
  }
  return out;
}

}  // namespace wsv
