#include "relational/instance.h"

#include <algorithm>

#include "common/hash.h"

namespace wsv {

bool Relation::Insert(const Tuple& t) {
  if (static_cast<int>(t.size()) != arity_) return false;
  tuples_.insert(t);
  return true;
}

void Relation::Erase(const Tuple& t) { tuples_.erase(t); }

void Relation::SetBool(bool b) {
  tuples_.clear();
  if (b) tuples_.insert(Tuple{});
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

size_t Relation::Hash() const {
  size_t h = static_cast<size_t>(arity_);
  for (const Tuple& t : tuples_) h = HashCombine(h, TupleHash()(t));
  return h;
}

namespace {
// Approximate per-node overhead of an ordered container entry (three
// child/parent pointers, color, allocator rounding).
constexpr size_t kTreeNodeBytes = 4 * sizeof(void*);
}  // namespace

size_t Relation::ApproxBytes() const {
  size_t bytes = sizeof(Relation);
  for (const Tuple& t : tuples_) {
    bytes += kTreeNodeBytes + sizeof(Tuple) + t.capacity() * sizeof(Value);
  }
  return bytes;
}

Status Instance::EnsureRelation(const std::string& name, int arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          "relation " + name + " already exists with arity " +
          std::to_string(it->second.arity()));
    }
    return Status::OK();
  }
  relations_.emplace(name, Relation(arity));
  return Status::OK();
}

const Relation* Instance::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Relation* Instance::MutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Status Instance::AddFact(const std::string& name, const Tuple& t) {
  WSV_RETURN_IF_ERROR(EnsureRelation(name, static_cast<int>(t.size())));
  relations_.at(name).Insert(t);
  for (Value v : t) domain_.insert(v);
  return Status::OK();
}

void Instance::SetConstant(const std::string& name, Value v) {
  constants_[name] = v;
  domain_.insert(v);
}

std::optional<Value> Instance::FindConstant(const std::string& name) const {
  auto it = constants_.find(name);
  if (it == constants_.end()) return std::nullopt;
  return it->second;
}

size_t Instance::Hash() const {
  std::hash<std::string> str_hash;
  size_t h = 0;
  for (const auto& [name, rel] : relations_) {
    h = HashCombine(h, str_hash(name));
    h = HashCombine(h, rel.Hash());
  }
  for (const auto& [name, v] : constants_) {
    h = HashCombine(h, str_hash(name));
    h = HashCombine(h, ValueHash()(v));
  }
  return HashRange(domain_.begin(), domain_.end(), h);
}

size_t Instance::ApproxBytes() const {
  size_t bytes = sizeof(Instance);
  for (const auto& [name, rel] : relations_) {
    bytes += kTreeNodeBytes + sizeof(std::string) + name.capacity() +
             rel.ApproxBytes();
  }
  for (const auto& [name, v] : constants_) {
    bytes += kTreeNodeBytes + sizeof(std::string) + name.capacity() +
             sizeof(Value);
  }
  bytes += domain_.size() * (kTreeNodeBytes + sizeof(Value));
  return bytes;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += name + " = " + rel.ToString() + "\n";
  }
  for (const auto& [name, v] : constants_) {
    out += name + " := " + v.name() + "\n";
  }
  return out;
}

}  // namespace wsv
