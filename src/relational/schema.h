// Relational schemas (Definition 2.1).
//
// A Web service works over four disjoint relational schemas — database D,
// state S, input I, and action A — plus constant symbols, some of which
// are *input constants* (const(I)): their interpretation is supplied by
// the user during the run rather than fixed with the database. For every
// non-constant input relation I there is implicitly a relation prev_I of
// the same arity holding the previous step's input.
//
// A Vocabulary collects all relation symbols of a service with their kind,
// together with the constant symbols.

#ifndef WSV_RELATIONAL_SCHEMA_H_
#define WSV_RELATIONAL_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace wsv {

/// Which of the four schemas (plus page propositions) a symbol belongs to.
enum class SymbolKind {
  kDatabase,
  kState,
  kInput,
  kAction,
  kPage,  // Web page names used as propositions in temporal formulas
};

const char* SymbolKindToString(SymbolKind kind);

/// A relation symbol with its arity and schema membership.
/// Arity 0 symbols are propositions.
struct RelationSymbol {
  std::string name;
  int arity = 0;
  SymbolKind kind = SymbolKind::kDatabase;
  /// Declaration site in the .wsv source (invalid when built in code).
  Span span;

  bool IsProposition() const { return arity == 0; }
};

/// The full vocabulary of a Web service: relation symbols of every kind
/// and the constant symbols (with the input-constant subset flagged).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Registers a relation symbol. Fails if the name is already taken by a
  /// relation or a constant, or the arity is negative. `span` records the
  /// declaration site for diagnostics.
  Status AddRelation(const std::string& name, int arity, SymbolKind kind,
                     Span span = {});

  /// Registers a constant symbol. `is_input_constant` marks members of
  /// const(I), whose values arrive from the user during the run.
  Status AddConstant(const std::string& name, bool is_input_constant,
                     Span span = {});

  /// Looks up a relation symbol by name; nullptr if absent.
  const RelationSymbol* FindRelation(const std::string& name) const;

  /// True iff `name` is a registered constant symbol.
  bool IsConstant(const std::string& name) const;

  /// True iff `name` is a registered input constant (member of const(I)).
  bool IsInputConstant(const std::string& name) const;

  /// All relation symbols, in registration order.
  const std::vector<RelationSymbol>& relations() const { return relations_; }

  /// All relation symbols of the given kind, in registration order.
  std::vector<RelationSymbol> RelationsOfKind(SymbolKind kind) const;

  /// All constant symbols, in registration order.
  const std::vector<std::string>& constants() const { return constants_; }

  /// The input constants const(I), in registration order.
  std::vector<std::string> InputConstants() const;

  /// Declaration site of a constant symbol (invalid when unknown).
  Span ConstantSpan(const std::string& name) const;

 private:
  std::vector<RelationSymbol> relations_;
  std::map<std::string, size_t> relation_index_;
  std::vector<std::string> constants_;
  std::map<std::string, bool> constant_is_input_;
  std::map<std::string, Span> constant_span_;
};

}  // namespace wsv

#endif  // WSV_RELATIONAL_SCHEMA_H_
