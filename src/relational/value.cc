#include "relational/value.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace wsv {

namespace {

// Process-wide interner. Entries are never removed, so returned ids and
// name references stay valid for the program lifetime. The table is a
// function-local static pointer (never destroyed) per the style rules on
// static storage duration.
//
// The interner sits on the multi-threaded verification hot path (name()
// is called per edge-signature render while building configuration
// graphs in parallel), so it uses a reader-writer lock: lookups take a
// shared lock, and every mutating path takes the exclusive lock exactly
// once.
struct Interner {
  std::shared_mutex mu;
  std::unordered_map<std::string, int32_t> ids;
  std::vector<const std::string*> names;  // id -> name (stable pointers)
  int64_t fresh_counter = 0;

  // Inserts `name` with the next id. Caller holds the exclusive lock and
  // has checked that `name` is absent.
  int32_t InsertLocked(std::string name) {
    int32_t id = static_cast<int32_t>(names.size());
    // Estimated footprint of one entry: key characters (or SSO buffer),
    // the map node (key string header, hash, id, bucket chain pointer),
    // and the names-vector back pointer. Entries are never removed, so
    // the gauge only rises.
    const size_t char_bytes = std::max(name.capacity(), sizeof(std::string));
    WSV_GAUGE_ADD("mem/value_interner_bytes",
                  char_bytes + sizeof(std::string) + 4 * sizeof(void*) +
                      sizeof(const std::string*));
    WSV_GAUGE_ADD("mem/value_interner_entries", 1);
    auto inserted = ids.emplace(std::move(name), id).first;
    names.push_back(&inserted->first);
    return id;
  }
};

Interner& GetInterner() {
  static Interner& interner = *new Interner();
  return interner;
}

}  // namespace

Value Value::Intern(std::string_view name) {
  Interner& in = GetInterner();
  std::string key(name);
  {
    // Fast path: already interned; shared lock admits concurrent readers.
    std::shared_lock<std::shared_mutex> lock(in.mu);
    auto it = in.ids.find(key);
    if (it != in.ids.end()) return Value(it->second);
  }
  // Miss: one exclusive critical section, re-checking under the lock
  // (another thread may have interned the name in the window).
  std::unique_lock<std::shared_mutex> lock(in.mu);
  auto it = in.ids.find(key);
  if (it != in.ids.end()) return Value(it->second);
  return Value(in.InsertLocked(std::move(key)));
}

Value Value::Fresh(std::string_view prefix) {
  Interner& in = GetInterner();
  // Single exclusive critical section: bump the counter and insert the
  // first non-colliding candidate without ever dropping the lock.
  std::unique_lock<std::shared_mutex> lock(in.mu);
  while (true) {
    std::string candidate =
        std::string(prefix) + std::to_string(in.fresh_counter++);
    if (in.ids.find(candidate) == in.ids.end()) {
      return Value(in.InsertLocked(std::move(candidate)));
    }
  }
}

const std::string& Value::name() const {
  Interner& in = GetInterner();
  std::shared_lock<std::shared_mutex> lock(in.mu);
  return *in.names[static_cast<size_t>(id_)];
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].valid() ? t[i].name() : std::string("<invalid>");
  }
  out += ")";
  return out;
}

}  // namespace wsv
