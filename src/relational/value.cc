#include "relational/value.h"

#include <mutex>
#include <unordered_map>

namespace wsv {

namespace {

// Process-wide interner. Entries are never removed, so returned ids and
// name references stay valid for the program lifetime. The table is a
// function-local static pointer (never destroyed) per the style rules on
// static storage duration.
struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, int32_t> ids;
  std::vector<const std::string*> names;  // id -> name (stable pointers)
  int64_t fresh_counter = 0;
};

Interner& GetInterner() {
  static Interner& interner = *new Interner();
  return interner;
}

}  // namespace

Value Value::Intern(std::string_view name) {
  Interner& in = GetInterner();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.ids.find(std::string(name));
  if (it != in.ids.end()) return Value(it->second);
  int32_t id = static_cast<int32_t>(in.names.size());
  auto inserted = in.ids.emplace(std::string(name), id).first;
  in.names.push_back(&inserted->first);
  return Value(id);
}

Value Value::Fresh(std::string_view prefix) {
  Interner& in = GetInterner();
  while (true) {
    int64_t n;
    {
      std::lock_guard<std::mutex> lock(in.mu);
      n = in.fresh_counter++;
    }
    std::string candidate = std::string(prefix) + std::to_string(n);
    {
      std::lock_guard<std::mutex> lock(in.mu);
      if (in.ids.find(candidate) == in.ids.end()) {
        int32_t id = static_cast<int32_t>(in.names.size());
        auto inserted = in.ids.emplace(std::move(candidate), id).first;
        in.names.push_back(&inserted->first);
        return Value(id);
      }
    }
  }
}

const std::string& Value::name() const {
  Interner& in = GetInterner();
  std::lock_guard<std::mutex> lock(in.mu);
  return *in.names[static_cast<size_t>(id_)];
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].valid() ? t[i].name() : std::string("<invalid>");
  }
  out += ")";
  return out;
}

}  // namespace wsv
