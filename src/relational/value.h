// Domain values and tuples.
//
// The paper assumes an infinite domain dom_inf of uninterpreted elements;
// constants like "login" or "Admin" are names for such elements. We intern
// every element name once, process-wide, and represent a Value as a dense
// 32-bit id. Interning keeps tuples cheap to hash and compare inside the
// model-checking inner loops.

#ifndef WSV_RELATIONAL_VALUE_H_
#define WSV_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace wsv {

/// An element of the data domain. Two Values are equal iff their names are
/// equal. Ordering is by interning id: stable within a process, arbitrary
/// across processes; use name() for user-facing ordering.
class Value {
 public:
  /// Constructs the invalid sentinel (not a domain element).
  Value() : id_(-1) {}

  /// Returns the Value for `name`, interning it on first use. Thread-safe.
  static Value Intern(std::string_view name);

  /// Returns a Value guaranteed distinct from all previously interned
  /// values, named "<prefix>N" for the smallest fresh N. Used by the
  /// database enumerator and for user-supplied input-constant values.
  static Value Fresh(std::string_view prefix);

  bool valid() const { return id_ >= 0; }
  int32_t id() const { return id_; }

  /// The element's name. Must be valid().
  const std::string& name() const;

  friend bool operator==(Value a, Value b) { return a.id_ == b.id_; }
  friend bool operator!=(Value a, Value b) { return a.id_ != b.id_; }
  friend bool operator<(Value a, Value b) { return a.id_ < b.id_; }

 private:
  explicit Value(int32_t id) : id_(id) {}

  int32_t id_;
};

/// A fixed-arity sequence of domain values.
using Tuple = std::vector<Value>;

/// Renders a tuple as "(a, b, c)".
std::string TupleToString(const Tuple& t);

struct ValueHash {
  size_t operator()(Value v) const {
    return std::hash<int32_t>()(v.id());
  }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (Value v : t) {
      h ^= ValueHash()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace wsv

template <>
struct std::hash<wsv::Value> {
  size_t operator()(wsv::Value v) const { return wsv::ValueHash()(v); }
};

#endif  // WSV_RELATIONAL_VALUE_H_
