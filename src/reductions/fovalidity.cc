#include "reductions/fovalidity.h"

#include "ctl/ctl_check.h"
#include "fo/parser.h"
#include "ltl/ltl_parser.h"
#include "ws/builder.h"

namespace wsv {

StatusOr<FoValidityReduction> BuildFoValidityReduction(
    const std::string& psi_text) {
  ServiceBuilder b("FoValidity");
  b.Database("Dom", 1);
  b.Database("Rel", 2);
  b.Input("X", 1);
  b.Input("Y", 1);
  b.State("donex", 0);
  b.State("truephi", 0);

  // The appendix's rule re-offers the recorded x through a state atom
  // with a variable (SX(x)); a Prev_I atom achieves the same re-offering
  // while staying within the strict input-bounded class.
  //
  // truephi reflects the previous step's pick: psi(x, y) when both x and
  // y were provided, vacuously true otherwise.
  std::string cond =
      "(exists x . X(x) & (exists y . Y(y) & (" + psi_text + "))) "
      "| !(exists x . X(x) & true) | !(exists y . Y(y) & true)";
  b.Page("P")
      .Options("X(x)", "(!donex & Dom(x)) | (donex & prev.X(x))")
      .Options("Y(y)", "donex & Dom(y)")
      .Insert("donex", "exists x . X(x) & true")
      .Insert("truephi", cond)
      .Delete("truephi", "!(" + cond + ")");
  b.Home("P").Error("ERR");
  WSV_ASSIGN_OR_RETURN(WebService service, b.Build());

  FoValidityReduction out;
  WSV_ASSIGN_OR_RETURN(
      out.property,
      ParseTemporalProperty("A X (A X (truephi))", &service.vocab()));
  out.service = std::move(service);
  return out;
}

StatusOr<bool> ExistsForallViaService(const FoValidityReduction& reduction,
                                      const Instance& database) {
  KripkeBuildOptions options;
  WSV_ASSIGN_OR_RETURN(
      Kripke kripke,
      BuildUnmergedKripke(reduction.service, database, options));
  WSV_ASSIGN_OR_RETURN(std::vector<char> label,
                       CtlLabel(kripke, *reduction.property.formula));
  // Engaged initial states: the user picked an x at step 0 (the bare
  // relation-name proposition X marks a non-empty input).
  int x_prop = kripke.FindProp("X");
  if (x_prop < 0) return false;  // X never picked: Dom is empty
  for (int s : kripke.InitialStates()) {
    if (kripke.label(s).count(x_prop) > 0 &&
        label[static_cast<size_t>(s)]) {
      return true;
    }
  }
  return false;
}

StatusOr<bool> ExistsForallDirect(const std::string& psi_text,
                                  const Instance& database) {
  Vocabulary vocab;
  WSV_RETURN_IF_ERROR(vocab.AddRelation("Dom", 1, SymbolKind::kDatabase));
  WSV_RETURN_IF_ERROR(vocab.AddRelation("Rel", 2, SymbolKind::kDatabase));
  WSV_ASSIGN_OR_RETURN(
      FormulaPtr f,
      ParseFormula("exists x . Dom(x) & (forall y . Dom(y) -> (" +
                       psi_text + "))",
                   &vocab));
  EvalContext ctx;
  ctx.AddLayer(&database);
  return Evaluate(*f, ctx);
}

}  // namespace wsv
