// The Turing machine reduction of Theorem 3.7.
//
// Relaxing input-boundedness by allowing state atoms with variables in
// input-option rules makes LTL-FO verification undecidable. The proof
// encodes a deterministic TM with a left-bounded tape: a run first lets
// the user allocate tape cells (fresh domain elements chained after the
// database constant `min`), then simulates moves through a 4-ary state
// relation T(cell, next_cell, symbol, head_state) driven by inputs that
// copy the head tuple (the paper's H input, plus a 7-ary HL variant
// carrying the predecessor cell so left moves stay input-bounded in the
// state rules — only the *options* rules leave the decidable class, as
// the theorem requires).
//
// The machine halts on the empty input iff some run over some database
// reaches a configuration with the halting state, i.e. iff
//     forall x, y, u . G(!T(x, y, u, "<halt>"))
// is violated. BuildTuringService produces the service; SimulateTm is
// the ground-truth simulator used by tests.

#ifndef WSV_REDUCTIONS_TURING_H_
#define WSV_REDUCTIONS_TURING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {

struct TuringMachine {
  enum class Dir { kLeft, kRight, kStay };
  struct Move {
    std::string state;
    std::string read;
    std::string write;
    std::string next_state;
    Dir dir = Dir::kStay;
  };

  std::string start = "q0";
  std::string halt = "qH";
  std::string blank = "b";
  std::vector<Move> moves;  // deterministic: one move per (state, read)
};

/// Simulates the machine on the empty (all-blank) tape; returns true iff
/// it reaches the halting state within `max_steps`.
bool SimulateTm(const TuringMachine& tm, int max_steps);

/// The Theorem 3.7 service encoding the machine.
StatusOr<WebService> BuildTuringService(const TuringMachine& tm);

/// The property  forall x, y, u . G(!T(x, y, u, "<halt>")); the machine
/// halts (on some sufficiently large database) iff it is violated.
StatusOr<TemporalProperty> TuringNonHaltingProperty(
    const TuringMachine& tm, const WebService& service);

}  // namespace wsv

#endif  // WSV_REDUCTIONS_TURING_H_
