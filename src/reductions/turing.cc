#include "reductions/turing.h"

#include <map>

#include "common/str_util.h"
#include "ltl/ltl_parser.h"
#include "ws/builder.h"

namespace wsv {

bool SimulateTm(const TuringMachine& tm, int max_steps) {
  std::map<std::pair<std::string, std::string>, const TuringMachine::Move*>
      delta;
  for (const TuringMachine::Move& m : tm.moves) {
    delta[{m.state, m.read}] = &m;
  }
  std::vector<std::string> tape{tm.blank};
  size_t head = 0;
  std::string state = tm.start;
  for (int step = 0; step < max_steps; ++step) {
    if (state == tm.halt) return true;
    auto it = delta.find({state, tape[head]});
    if (it == delta.end()) return false;  // stuck, never halts
    const TuringMachine::Move& m = *it->second;
    tape[head] = m.write;
    state = m.next_state;
    switch (m.dir) {
      case TuringMachine::Dir::kLeft:
        if (head > 0) --head;
        break;
      case TuringMachine::Dir::kRight:
        ++head;
        if (head == tape.size()) tape.push_back(tm.blank);
        break;
      case TuringMachine::Dir::kStay:
        break;
    }
  }
  return state == tm.halt;
}

namespace {

std::string Lit(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

StatusOr<WebService> BuildTuringService(const TuringMachine& tm) {
  bool has_left = false;
  bool has_right_or_stay = false;
  for (const TuringMachine::Move& m : tm.moves) {
    if (m.dir == TuringMachine::Dir::kLeft) {
      has_left = true;
    } else {
      has_right_or_stay = true;
    }
  }

  ServiceBuilder b("Turing");
  b.Database("D", 1);
  b.Constant("min");
  b.State("T", 4);
  b.State("Cell", 1);
  b.State("Max", 1);
  b.State("Head", 1);
  b.State("initialized", 0);
  b.Input("I", 1);
  if (has_right_or_stay) b.Input("H", 4);
  if (has_left) b.Input("HL", 7);

  const std::string kMarker = Lit("#");

  // ---- Initialization page: the user allocates tape cells. ----------
  {
    PageBuilder init = b.Page("Init");
    init.Options("I(y)", "D(y) & y != min & !Cell(y)");
    init.Insert("T(x1, x2, x3, x4)",
                "(x1 = min & I(x2) & !initialized & x3 = " + Lit(tm.blank) +
                    " & x4 = " + Lit(tm.start) + ") | (I(x2) & Max(x1) & "
                    "initialized & x3 = " + Lit(tm.blank) + " & x4 = " +
                    kMarker + ")");
    init.Insert("Cell(x1)", "I(x1) | (x1 = min & !initialized)");
    init.Insert("Head(x1)", "x1 = min & !initialized");
    init.Insert("initialized", "!initialized");
    init.Insert("Max(x1)", "I(x1)");
    init.Delete("Max(x1)", "Max(x1) & (exists y . I(y) & true)");
    init.Target("Sim", "!(exists y . I(y) & true)");
  }

  // ---- Simulation page: inputs copy the head configuration. ---------
  {
    PageBuilder sim = b.Page("Sim");

    std::vector<std::string> h_conds, hl_conds;
    std::vector<std::string> t_ins, t_del, head_ins, head_del;
    for (const TuringMachine::Move& m : tm.moves) {
      std::string a = Lit(m.read), q = Lit(m.state), w = Lit(m.write),
                  r = Lit(m.next_state);
      switch (m.dir) {
        case TuringMachine::Dir::kStay:
          h_conds.push_back("(u = " + a + " & p = " + q + ")");
          t_del.push_back("(H(x1, x2, x3, x4) & x3 = " + a +
                          " & x4 = " + q + ")");
          t_ins.push_back("(H(x1, x2, " + a + ", " + q + ") & x3 = " + w +
                          " & x4 = " + r + ")");
          break;
        case TuringMachine::Dir::kRight:
          h_conds.push_back("(u = " + a + " & p = " + q + ")");
          // The head tuple is rewritten to (w, #); the next cell's
          // marker tuple takes the new control state r; the head moves
          // to the next cell.
          t_del.push_back("(H(x1, x2, x3, x4) & x3 = " + a +
                          " & x4 = " + q + ")");
          t_del.push_back("((exists x . H(x, x1, " + a + ", " + q +
                          ") & true) & x4 = " + kMarker + ")");
          t_ins.push_back("(H(x1, x2, " + a + ", " + q + ") & x3 = " + w +
                          " & x4 = " + kMarker + ")");
          t_ins.push_back("((exists x . H(x, x1, " + a + ", " + q +
                          ") & true) & T(x1, x2, x3, " + kMarker +
                          ") & x4 = " + r + ")");
          head_del.push_back("(exists y . H(x1, y, " + a + ", " + q +
                             ") & true)");
          head_ins.push_back("(exists x . H(x, x1, " + a + ", " + q +
                             ") & true)");
          break;
        case TuringMachine::Dir::kLeft:
          hl_conds.push_back("(u = " + a + " & p = " + q + ")");
          // HL(xp, up, pp, x, y, u, p): head at x with successor y, the
          // predecessor tuple is T(xp, x, up, pp).
          t_del.push_back("((exists xp, up, pp . HL(xp, up, pp, x1, x2, " +
                          a + ", " + q + ") & true) & x3 = " + a +
                          " & x4 = " + q + ")");
          t_del.push_back("((exists y . HL(x1, x3, x4, x2, y, " + a + ", " +
                          q + ") & true) & x4 = " + kMarker + ")");
          t_ins.push_back("((exists xp, up, pp . HL(xp, up, pp, x1, x2, " +
                          a + ", " + q + ") & true) & x3 = " + w +
                          " & x4 = " + kMarker + ")");
          t_ins.push_back("((exists y, pp . HL(x1, x3, pp, x2, y, " + a +
                          ", " + q + ") & true) & x4 = " + r + ")");
          head_del.push_back("(exists xp, up, pp, y . HL(xp, up, pp, x1, y, " +
                             a + ", " + q + ") & true)");
          head_ins.push_back("(exists up, pp, x, y . HL(x1, up, pp, x, y, " +
                             a + ", " + q + ") & true)");
          break;
      }
    }
    if (has_right_or_stay) {
      sim.Options("H(x, y, u, p)", "Head(x) & T(x, y, u, p) & (" +
                                       Join(h_conds, " | ") + ")");
    }
    if (has_left) {
      sim.Options("HL(xp, up, pp, x, y, u, p)",
                  "Head(x) & T(x, y, u, p) & T(xp, x, up, pp) & (" +
                      Join(hl_conds, " | ") + ")");
    }
    if (!t_ins.empty()) {
      sim.Insert("T(x1, x2, x3, x4)", Join(t_ins, " | "));
    }
    if (!t_del.empty()) {
      sim.Delete("T(x1, x2, x3, x4)", Join(t_del, " | "));
    }
    if (!head_ins.empty()) sim.Insert("Head(x1)", Join(head_ins, " | "));
    if (!head_del.empty()) sim.Delete("Head(x1)", Join(head_del, " | "));
  }

  b.Home("Init").Error("ERR");
  return b.Build();
}

StatusOr<TemporalProperty> TuringNonHaltingProperty(
    const TuringMachine& tm, const WebService& service) {
  return ParseTemporalProperty(
      "forall x, y, u . G(!T(x, y, u, " + Lit(tm.halt) + "))",
      &service.vocab());
}

}  // namespace wsv
