// The QBF reduction behind PSPACE-hardness of error-freeness
// (Lemma A.6).
//
// For a quantified boolean formula phi, BuildQbfService constructs the
// input-bounded Web service W_phi whose home page offers two unary
// inputs I0, I1 with options drawn from a unary database relation R, and
// two target rules that *both* fire — an ambiguity error — exactly when
// I0 = {"0"}, I1 = {"1"}, and the FO translation of phi holds. Hence
// W_phi is error-free iff phi is false, which makes error-freeness
// PSPACE-hard. The FO translation maps boolean quantification to
// input-guarded quantification over the two chosen values:
//     x            ~>  x = "1"
//     exists x phi ~>  (exists x . I0(x) & phi') |
//                      (exists x . I1(x) & phi')
// (the guard is split across the two input atoms to stay within the
// strict input-bounded quantifier shape).
//
// EvaluateQbf is a direct exponential-time evaluator used by the tests
// and benches as ground truth.

#ifndef WSV_REDUCTIONS_QBF_H_
#define WSV_REDUCTIONS_QBF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ws/service.h"

namespace wsv {

class Qbf;
using QbfPtr = std::shared_ptr<const Qbf>;

/// Quantified boolean formulas over named variables (connectives are
/// closed under Not/And/Or; quantifiers bind one variable).
class Qbf {
 public:
  enum class Kind { kVar, kNot, kAnd, kOr, kExists, kForall };

  static QbfPtr Var(std::string name);
  static QbfPtr Not(QbfPtr f);
  static QbfPtr And(QbfPtr a, QbfPtr b);
  static QbfPtr Or(QbfPtr a, QbfPtr b);
  static QbfPtr Exists(std::string var, QbfPtr body);
  static QbfPtr Forall(std::string var, QbfPtr body);

  Kind kind() const { return kind_; }
  const std::string& var() const { return var_; }
  const std::vector<QbfPtr>& children() const { return children_; }

  std::string ToString() const;

 protected:
  explicit Qbf(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  std::string var_;
  std::vector<QbfPtr> children_;
};

/// Direct evaluation (closed formulas only).
StatusOr<bool> EvaluateQbf(const Qbf& f);

/// The Lemma A.6 service; error-free iff the formula is false.
StatusOr<WebService> BuildQbfService(const Qbf& f);

/// A pseudo-random closed prenex QBF with `vars` alternating quantifiers
/// over a random 3-ish-CNF-shaped matrix; used by the benches.
QbfPtr RandomQbf(int vars, int clauses, uint64_t seed);

}  // namespace wsv

#endif  // WSV_REDUCTIONS_QBF_H_
