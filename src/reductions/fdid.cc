#include "reductions/fdid.h"

#include <set>

#include "common/str_util.h"
#include "ltl/ltl_parser.h"
#include "ws/builder.h"

namespace wsv {

bool FdImplies(const FdidInstance& instance) {
  std::set<int> closure(instance.goal.lhs.begin(), instance.goal.lhs.end());
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Fd& fd : instance.fds) {
      if (closure.count(fd.rhs) > 0) continue;
      bool applies = true;
      for (int c : fd.lhs) {
        if (closure.count(c) == 0) applies = false;
      }
      if (applies) {
        closure.insert(fd.rhs);
        grew = true;
      }
    }
  }
  return closure.count(instance.goal.rhs) > 0;
}

namespace {

std::vector<std::string> Vars(const std::string& prefix, int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

// Projection body: exists <non-projected vars> . S(args) & <equalities>,
// where args[c] is the head variable for projected columns and a fresh
// variable otherwise. A column projected twice (e.g. the goal FD A -> A)
// pins both head variables to it via an equality conjunct.
std::string ProjectionBody(int arity, const std::vector<int>& cols,
                           const std::vector<std::string>& head_vars) {
  std::vector<std::string> args(arity);
  for (int c = 0; c < arity; ++c) {
    args[c] = "o" + std::to_string(c);
  }
  std::vector<std::string> equalities;
  std::set<int> projected;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (projected.insert(cols[i]).second) {
      args[cols[i]] = head_vars[i];
    } else {
      equalities.push_back(head_vars[i] + " = " + args[cols[i]]);
    }
  }
  std::vector<std::string> bound;
  for (int c = 0; c < arity; ++c) {
    if (projected.count(c) == 0) bound.push_back(args[c]);
  }
  std::string atom = "S(" + Join(args, ", ") + ")";
  for (const std::string& eq : equalities) atom += " & " + eq;
  if (bound.empty()) return atom;
  return "exists " + Join(bound, ", ") + " . " + atom;
}

}  // namespace

StatusOr<FdidReduction> BuildFdidReduction(const FdidInstance& instance) {
  const int k = instance.arity;
  ServiceBuilder b("Fdid");
  b.Database("R", 1);
  b.Input("Ins", k);
  b.Input("done", 0);
  b.State("S", k);
  b.State("stop1", 0).State("stop2", 0);

  // Declare per-dependency relations.
  std::vector<std::string> viols;
  for (size_t i = 0; i < instance.inds.size(); ++i) {
    const Ind& ind = instance.inds[i];
    std::string sx = "IX" + std::to_string(i);
    std::string sy = "IY" + std::to_string(i);
    std::string sbar = "IBar" + std::to_string(i);
    std::string viol = "violI" + std::to_string(i);
    b.State(sx, static_cast<int>(ind.lhs.size()));
    b.State(sy, static_cast<int>(ind.rhs.size()));
    b.State(sbar, static_cast<int>(ind.lhs.size()));
    b.State(viol, 0);
    viols.push_back(viol);
  }
  for (size_t i = 0; i < instance.fds.size(); ++i) {
    const Fd& fd = instance.fds[i];
    std::string sxa = "FX" + std::to_string(i);
    std::string sbar = "FBar" + std::to_string(i);
    std::string viol = "violF" + std::to_string(i);
    b.State(sxa, static_cast<int>(fd.lhs.size()) + 1);
    b.State(sbar, static_cast<int>(fd.lhs.size()) + 2);
    b.State(viol, 0);
    viols.push_back(viol);
  }
  b.State("GX", static_cast<int>(instance.goal.lhs.size()) + 1);
  b.State("GBar", static_cast<int>(instance.goal.lhs.size()) + 2);

  PageBuilder page = b.Page("Main");
  {
    std::vector<std::string> xs = Vars("x", k);
    std::vector<std::string> guards;
    for (const std::string& x : xs) guards.push_back("R(" + x + ")");
    page.Options("Ins(" + Join(xs, ", ") + ")", Join(guards, " & "));
    page.UseInput("done");
    page.Insert("S(" + Join(xs, ", ") + ")",
                "Ins(" + Join(xs, ", ") + ") & !stop1");
    page.Insert("stop1", "done");
    page.Insert("stop2", "stop1");
  }
  for (size_t i = 0; i < instance.inds.size(); ++i) {
    const Ind& ind = instance.inds[i];
    std::string si = std::to_string(i);
    std::vector<std::string> xs = Vars("x", static_cast<int>(ind.lhs.size()));
    std::string head = "(" + Join(xs, ", ") + ")";
    page.Insert("IX" + si + head, ProjectionBody(k, ind.lhs, xs));
    page.Insert("IY" + si + head, ProjectionBody(k, ind.rhs, xs));
    page.Insert("IBar" + si + head, "IX" + si + head + " & !IY" + si + head +
                                        " & stop2");
    page.Insert("violI" + si,
                "exists " + Join(xs, ", ") + " . IBar" + si + head);
  }
  auto add_fd = [&](const Fd& fd, const std::string& sxa,
                    const std::string& sbar) {
    std::vector<std::string> xs = Vars("x", static_cast<int>(fd.lhs.size()));
    std::vector<int> cols = fd.lhs;
    cols.push_back(fd.rhs);
    std::vector<std::string> head_xa = xs;
    head_xa.push_back("a0");
    page.Insert(sxa + "(" + Join(head_xa, ", ") + ")",
                ProjectionBody(k, cols, head_xa));
    std::vector<std::string> head_bar = xs;
    head_bar.push_back("a1");
    head_bar.push_back("a2");
    std::vector<std::string> args1 = xs, args2 = xs;
    args1.push_back("a1");
    args2.push_back("a2");
    page.Insert(sbar + "(" + Join(head_bar, ", ") + ")",
                sxa + "(" + Join(args1, ", ") + ") & " + sxa + "(" +
                    Join(args2, ", ") + ") & a1 != a2 & stop2");
  };
  for (size_t i = 0; i < instance.fds.size(); ++i) {
    std::string si = std::to_string(i);
    add_fd(instance.fds[i], "FX" + si, "FBar" + si);
    std::vector<std::string> xs =
        Vars("x", static_cast<int>(instance.fds[i].lhs.size()));
    xs.push_back("a1");
    xs.push_back("a2");
    page.Insert("violF" + si,
                "exists " + Join(xs, ", ") + " . FBar" + si + "(" +
                    Join(xs, ", ") + ")");
  }
  add_fd(instance.goal, "GX", "GBar");

  b.Home("Main").Error("ERR");
  WSV_ASSIGN_OR_RETURN(WebService service, b.Build());

  // forall x..,a1,a2 . G(!done) | (F done & (F viol | G !GBar(...))).
  std::vector<std::string> gvars =
      Vars("x", static_cast<int>(instance.goal.lhs.size()));
  gvars.push_back("a1");
  gvars.push_back("a2");
  std::string viol_disj = viols.empty() ? "false" : Join(viols, " | ");
  std::string text = "forall " + Join(gvars, ", ") +
                     " . G(!done) | (F(done) & (F(" + viol_disj +
                     ") | G(!GBar(" + Join(gvars, ", ") + "))))";
  FdidReduction out;
  WSV_ASSIGN_OR_RETURN(out.property,
                       ParseTemporalProperty(text, &service.vocab()));
  out.service = std::move(service);
  return out;
}

}  // namespace wsv
