// The functional/inclusion dependency reduction of Theorem 3.8.
//
// Allowing state *projection* rules (+S(x) :- exists y . S'(x, y)) makes
// LTL-FO verification undecidable, by reduction from the implication
// problem for functional and inclusion dependencies (Chandra-Vardi). The
// generated service lets the user pump tuples into a state relation S
// through an input relation, then signal `done`; projection rules
// materialize the projections each dependency talks about, and violation
// flags light up two steps later. The property
//
//   forall x, a1, a2 .
//     G(!done) | (F(done) & (F(viol) | G(!SbarF(x, a1, a2))))
//
// holds iff Sigma implies f on the (bounded) instances explored.
//
// FdImplies is a ground-truth oracle for the FD-only case (attribute-set
// closure); tests use it plus hand-picked ID cases.

#ifndef WSV_REDUCTIONS_FDID_H_
#define WSV_REDUCTIONS_FDID_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ltl/ltl.h"
#include "ws/service.h"

namespace wsv {

/// A functional dependency X -> A over column indices of S.
struct Fd {
  std::vector<int> lhs;
  int rhs = 0;
};

/// An inclusion dependency S[X] \subseteq S[Y] over column indices.
struct Ind {
  std::vector<int> lhs;
  std::vector<int> rhs;
};

struct FdidInstance {
  int arity = 2;            // arity of S
  std::vector<Fd> fds;      // Sigma's FDs
  std::vector<Ind> inds;    // Sigma's INDs
  Fd goal;                  // f, the dependency to test
};

/// FD-only implication via attribute closure (ignores inds).
bool FdImplies(const FdidInstance& instance);

struct FdidReduction {
  WebService service;
  TemporalProperty property;
};

/// Builds the Theorem 3.8 service and property for the instance.
StatusOr<FdidReduction> BuildFdidReduction(const FdidInstance& instance);

}  // namespace wsv

#endif  // WSV_REDUCTIONS_FDID_H_
