#include "reductions/qbf.h"

#include <map>
#include <random>

#include "ws/builder.h"

namespace wsv {

namespace {

QbfPtr MakeQbf(Qbf::Kind kind) {
  struct Access : Qbf {
    explicit Access(Kind k) : Qbf(k) {}
  };
  return std::make_shared<Access>(kind);
}

Qbf* Mutable(const QbfPtr& f) { return const_cast<Qbf*>(f.get()); }

}  // namespace

QbfPtr Qbf::Var(std::string name) {
  QbfPtr f = MakeQbf(Kind::kVar);
  Mutable(f)->var_ = std::move(name);
  return f;
}

QbfPtr Qbf::Not(QbfPtr sub) {
  QbfPtr f = MakeQbf(Kind::kNot);
  Mutable(f)->children_.push_back(std::move(sub));
  return f;
}

QbfPtr Qbf::And(QbfPtr a, QbfPtr b) {
  QbfPtr f = MakeQbf(Kind::kAnd);
  Mutable(f)->children_.push_back(std::move(a));
  Mutable(f)->children_.push_back(std::move(b));
  return f;
}

QbfPtr Qbf::Or(QbfPtr a, QbfPtr b) {
  QbfPtr f = MakeQbf(Kind::kOr);
  Mutable(f)->children_.push_back(std::move(a));
  Mutable(f)->children_.push_back(std::move(b));
  return f;
}

QbfPtr Qbf::Exists(std::string var, QbfPtr body) {
  QbfPtr f = MakeQbf(Kind::kExists);
  Mutable(f)->var_ = std::move(var);
  Mutable(f)->children_.push_back(std::move(body));
  return f;
}

QbfPtr Qbf::Forall(std::string var, QbfPtr body) {
  QbfPtr f = MakeQbf(Kind::kForall);
  Mutable(f)->var_ = std::move(var);
  Mutable(f)->children_.push_back(std::move(body));
  return f;
}

std::string Qbf::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return var_;
    case Kind::kNot:
      return "!" + children_[0]->ToString();
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " & " +
             children_[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " | " +
             children_[1]->ToString() + ")";
    case Kind::kExists:
      return "E" + var_ + "." + children_[0]->ToString();
    case Kind::kForall:
      return "A" + var_ + "." + children_[0]->ToString();
  }
  return "?";
}

namespace {

StatusOr<bool> EvalQbf(const Qbf& f, std::map<std::string, bool>& env) {
  switch (f.kind()) {
    case Qbf::Kind::kVar: {
      auto it = env.find(f.var());
      if (it == env.end()) {
        return Status::InvalidArgument("free QBF variable " + f.var());
      }
      return it->second;
    }
    case Qbf::Kind::kNot: {
      WSV_ASSIGN_OR_RETURN(bool b, EvalQbf(*f.children()[0], env));
      return !b;
    }
    case Qbf::Kind::kAnd:
    case Qbf::Kind::kOr: {
      WSV_ASSIGN_OR_RETURN(bool a, EvalQbf(*f.children()[0], env));
      WSV_ASSIGN_OR_RETURN(bool b, EvalQbf(*f.children()[1], env));
      return f.kind() == Qbf::Kind::kAnd ? (a && b) : (a || b);
    }
    case Qbf::Kind::kExists:
    case Qbf::Kind::kForall: {
      bool exists = f.kind() == Qbf::Kind::kExists;
      auto saved = env.find(f.var());
      std::optional<bool> old;
      if (saved != env.end()) old = saved->second;
      bool result = !exists;
      for (bool v : {false, true}) {
        env[f.var()] = v;
        WSV_ASSIGN_OR_RETURN(bool b, EvalQbf(*f.children()[0], env));
        if (b == exists) {
          result = exists;
          break;
        }
      }
      if (old.has_value()) {
        env[f.var()] = *old;
      } else {
        env.erase(f.var());
      }
      return result;
    }
  }
  return Status::Internal("bad QBF kind");
}

// FO translation phi' as formula text (Lemma A.6): variables become
// x = "1"; quantifiers are guarded by the two input relations.
std::string Translate(const Qbf& f) {
  switch (f.kind()) {
    case Qbf::Kind::kVar:
      return "(" + f.var() + " = \"1\")";
    case Qbf::Kind::kNot:
      return "!" + Translate(*f.children()[0]);
    case Qbf::Kind::kAnd:
      return "(" + Translate(*f.children()[0]) + " & " +
             Translate(*f.children()[1]) + ")";
    case Qbf::Kind::kOr:
      return "(" + Translate(*f.children()[0]) + " | " +
             Translate(*f.children()[1]) + ")";
    case Qbf::Kind::kExists: {
      std::string body = Translate(*f.children()[0]);
      return "((exists " + f.var() + " . I0(" + f.var() + ") & " + body +
             ") | (exists " + f.var() + " . I1(" + f.var() + ") & " + body +
             "))";
    }
    case Qbf::Kind::kForall: {
      // forall x phi == !exists x !phi, expressed with guarded foralls:
      // (forall x . I0(x) -> phi) & (forall x . I1(x) -> phi).
      std::string body = Translate(*f.children()[0]);
      return "((forall " + f.var() + " . I0(" + f.var() + ") -> " + body +
             ") & (forall " + f.var() + " . I1(" + f.var() + ") -> " + body +
             "))";
    }
  }
  return "false";
}

}  // namespace

StatusOr<bool> EvaluateQbf(const Qbf& f) {
  std::map<std::string, bool> env;
  return EvalQbf(f, env);
}

StatusOr<WebService> BuildQbfService(const Qbf& f) {
  ServiceBuilder b("Qbf");
  b.Database("R", 1);
  b.Input("I0", 1).Input("I1", 1);
  std::string cond =
      "I0(\"0\") & I1(\"1\") & " + Translate(f);
  b.Page("W0")
      .Options("I0(x)", "R(x)")
      .Options("I1(x)", "R(x)")
      .Target("W1", cond)
      .Target("W2", cond);
  b.Page("W1");
  b.Page("W2");
  b.Home("W0").Error("ERR");
  return b.Build();
}

QbfPtr RandomQbf(int vars, int clauses, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::string> names;
  for (int i = 0; i < vars; ++i) names.push_back("v" + std::to_string(i));
  // Random 3-literal clauses over the variables.
  QbfPtr matrix;
  for (int c = 0; c < clauses; ++c) {
    QbfPtr clause;
    for (int l = 0; l < 3; ++l) {
      std::uniform_int_distribution<size_t> pick(0, names.size() - 1);
      QbfPtr lit = Qbf::Var(names[pick(rng)]);
      if (rng() % 2 == 0) lit = Qbf::Not(std::move(lit));
      clause = clause == nullptr ? lit : Qbf::Or(std::move(clause), lit);
    }
    matrix =
        matrix == nullptr ? clause : Qbf::And(std::move(matrix), clause);
  }
  if (matrix == nullptr) matrix = Qbf::Var(names.front());
  // Alternating quantifier prefix, innermost first.
  QbfPtr out = std::move(matrix);
  for (int i = vars - 1; i >= 0; --i) {
    out = (i % 2 == 0) ? Qbf::Exists(names[static_cast<size_t>(i)], out)
                       : Qbf::Forall(names[static_cast<size_t>(i)], out);
  }
  return out;
}

}  // namespace wsv
