// The Theorem 4.2 reduction: branching-time verification of
// input-bounded CTL-FO properties is undecidable, because path
// quantifiers can simulate first-order quantification — finite validity
// of prefix-class  exists x forall y  sentences reduces to it.
//
// For a quantifier-free matrix psi(x, y) over a binary database relation
// Rel and unary Dom, the generated *simple* service lets the user pick a
// value for x (recorded in the state relation SX), then re-offers
// exactly that x while y ranges over the whole domain; one step later
// the proposition truephi reflects psi(x, y) (vacuously true when the
// user abstained, so only completed picks "bite"). Then
//
//   exists x forall y psi  is true on database D
//     <=>  some engaged initial state of the (unmerged) Kripke structure
//          satisfies  A X (A X (truephi))
//
// mirroring the appendix's E X A X A X (true_psi) at the root. Finite
// validity quantifies over all databases — undecidable, which is the
// theorem's point; the bounded enumerator decides each bounded instance.

#ifndef WSV_REDUCTIONS_FOVALIDITY_H_
#define WSV_REDUCTIONS_FOVALIDITY_H_

#include <string>

#include "common/status.h"
#include "ltl/ltl.h"
#include "verify/abstraction.h"
#include "ws/service.h"

namespace wsv {

struct FoValidityReduction {
  WebService service;
  /// The CTL formula A X (A X (truephi)), to be checked at engaged
  /// initial states (those where the user picked an x).
  TemporalProperty property;
};

/// Builds the reduction service for the matrix `psi_text`, a
/// quantifier-free formula over Rel(x, y), Dom(x), Dom(y), equalities,
/// with free variables exactly x and y.
StatusOr<FoValidityReduction> BuildFoValidityReduction(
    const std::string& psi_text);

/// Decides  exists x forall y psi  over one database (with Dom as the
/// quantification range) through the reduction: builds the unmerged
/// Kripke structure and checks the property at the engaged initial
/// states.
StatusOr<bool> ExistsForallViaService(const FoValidityReduction& reduction,
                                      const Instance& database);

/// Ground truth: direct active-domain evaluation of
/// exists x (Dom(x) & forall y (Dom(y) -> psi)).
StatusOr<bool> ExistsForallDirect(const std::string& psi_text,
                                  const Instance& database);

}  // namespace wsv

#endif  // WSV_REDUCTIONS_FOVALIDITY_H_
