// Printing / parsing round trips: the pretty-printed form of every
// gallery service must re-parse to a structurally equivalent service,
// and formula printing must re-parse to an identical formula.

#include <gtest/gtest.h>

#include "fo/parser.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/input_search_verifier.h"
#include "ws/spec_parser.h"

namespace wsv {
namespace {

void ExpectServiceRoundTrips(const WebService& service) {
  std::string printed = service.ToString();
  auto reparsed = ParseServiceSpec(printed);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nprinted spec:\n" << printed;
  EXPECT_EQ(reparsed->name(), service.name());
  EXPECT_EQ(reparsed->home_page(), service.home_page());
  EXPECT_EQ(reparsed->error_page(), service.error_page());
  ASSERT_EQ(reparsed->pages().size(), service.pages().size());
  for (size_t i = 0; i < service.pages().size(); ++i) {
    const PageSchema& a = service.pages()[i];
    const PageSchema& b = reparsed->pages()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.inputs, b.inputs) << a.name;
    EXPECT_EQ(a.input_constants, b.input_constants) << a.name;
    EXPECT_EQ(a.targets, b.targets) << a.name;
    ASSERT_EQ(a.input_rules.size(), b.input_rules.size()) << a.name;
    ASSERT_EQ(a.state_rules.size(), b.state_rules.size()) << a.name;
    ASSERT_EQ(a.action_rules.size(), b.action_rules.size()) << a.name;
    ASSERT_EQ(a.target_rules.size(), b.target_rules.size()) << a.name;
    for (size_t r = 0; r < a.state_rules.size(); ++r) {
      EXPECT_EQ(a.state_rules[r].ToString(), b.state_rules[r].ToString())
          << a.name;
    }
    for (size_t r = 0; r < a.target_rules.size(); ++r) {
      EXPECT_EQ(a.target_rules[r].ToString(), b.target_rules[r].ToString())
          << a.name;
    }
  }
}

TEST(RoundTripTest, LoginService) {
  ExpectServiceRoundTrips(*BuildLoginService());
}

TEST(RoundTripTest, EcommerceService) {
  ExpectServiceRoundTrips(*BuildEcommerceService());
}

TEST(RoundTripTest, PaperClearLoopService) {
  ExpectServiceRoundTrips(*BuildPaperClearLoopService());
}

TEST(RoundTripTest, CatalogSearchService) {
  ExpectServiceRoundTrips(
      *BuildInputDrivenSearchService(CatalogSearchSpec()));
}

TEST(RoundTripTest, FoFormulaPrintParseFixpoint) {
  const char* formulas[] = {
      "user(name, password) & button(\"login\")",
      "exists x, y . I(x, y) & (p(x) | !q(y))",
      "forall x . button(x) -> (x = \"a\" | x != \"b\")",
      "!(a & b) | (c & !d)",
      "prev.I(x, \"lit\")",
  };
  Vocabulary v;
  ASSERT_TRUE(v.AddRelation("user", 2, SymbolKind::kDatabase).ok());
  ASSERT_TRUE(v.AddRelation("button", 1, SymbolKind::kInput).ok());
  ASSERT_TRUE(v.AddRelation("I", 2, SymbolKind::kInput).ok());
  ASSERT_TRUE(v.AddRelation("p", 1, SymbolKind::kDatabase).ok());
  ASSERT_TRUE(v.AddRelation("q", 1, SymbolKind::kDatabase).ok());
  ASSERT_TRUE(v.AddRelation("a", 0, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddRelation("b", 0, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddRelation("c", 0, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddRelation("d", 0, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddConstant("name", true).ok());
  ASSERT_TRUE(v.AddConstant("password", true).ok());
  for (const char* text : formulas) {
    SCOPED_TRACE(text);
    auto f1 = ParseFormula(text, &v);
    ASSERT_TRUE(f1.ok()) << f1.status().ToString();
    std::string printed = (*f1)->ToString();
    auto f2 = ParseFormula(printed, &v);
    ASSERT_TRUE(f2.ok()) << f2.status().ToString() << "\n" << printed;
    // Printing is a fixpoint after one round.
    EXPECT_EQ((*f2)->ToString(), printed);
  }
}

TEST(RoundTripTest, TemporalPropertyPrintParseFixpoint) {
  const char* properties[] = {
      "G(!P) | F(P & F(Q))",
      "forall pid, price . (beta B !(conf & ship))",
      "A G(E F(home))",
      "E (F(p) & G(!q))",
      "X(a U (b B c))",
  };
  Vocabulary v;
  for (const char* name : {"P", "Q", "beta", "conf", "ship", "home", "p",
                           "q", "a", "b", "c"}) {
    ASSERT_TRUE(v.AddRelation(name, 0, SymbolKind::kState).ok());
  }
  for (const char* text : properties) {
    SCOPED_TRACE(text);
    auto p1 = ParseTemporalProperty(text, &v);
    ASSERT_TRUE(p1.ok()) << p1.status().ToString();
    std::string printed = p1->ToString();
    auto p2 = ParseTemporalProperty(printed, &v);
    ASSERT_TRUE(p2.ok()) << p2.status().ToString() << "\n" << printed;
    EXPECT_EQ(p2->ToString(), printed);
  }
}

}  // namespace
}  // namespace wsv
