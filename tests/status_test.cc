#include "common/status.h"

#include <gtest/gtest.h>

#include "common/str_util.h"

namespace wsv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kNotInputBounded,
        StatusCode::kUnsupported, StatusCode::kResourceExhausted,
        StatusCode::kNotFound, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  WSV_ASSIGN_OR_RETURN(int h, Half(x));
  WSV_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  StatusOr<int> err = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(err.ok());
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, SplitTrims) {
  std::vector<std::string> parts = Split(" a , b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StrUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_a1"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1a"));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(StrUtilTest, QuoteString) {
  EXPECT_EQ(QuoteString("ab"), "\"ab\"");
  EXPECT_EQ(QuoteString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(QuoteString("a\nb"), "\"a\\nb\"");
}

}  // namespace
}  // namespace wsv
