// Differential tests for the FO bytecode engine: on seeded random
// formulas and instances, compiled verdicts, query results, and error
// statuses must be bit-identical to the tree-walking interpreter's.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fo/bytecode/cache.h"
#include "fo/bytecode/compiler.h"
#include "fo/bytecode/vm.h"
#include "fo/evaluator.h"
#include "fo/formula.h"

namespace wsv {
namespace {

struct RelSpec {
  const char* name;
  int arity;
};

constexpr RelSpec kRels[] = {{"p", 1}, {"q", 2}, {"r", 3}, {"s", 2}};
constexpr const char* kVars[] = {"x", "y", "z", "w"};
constexpr const char* kConsts[] = {"ca", "cb"};

class Fuzzer {
 public:
  explicit Fuzzer(uint64_t seed) : eng_(seed) {
    for (int i = 0; i < 5; ++i) {
      values_.push_back(Value::Intern("v" + std::to_string(i)));
    }
  }

  int Uniform(int n) {
    return static_cast<int>(eng_() % static_cast<uint64_t>(n));
  }
  bool Chance(int percent) { return Uniform(100) < percent; }

  Value RandValue() { return values_[Uniform(values_.size())]; }

  Term RandTerm() {
    switch (Uniform(4)) {
      case 0:
        return Term::ConstantSymbol(kConsts[Uniform(2)]);
      case 1:
        return Term::Literal(RandValue());
      default:
        return Term::Variable(kVars[Uniform(4)]);
    }
  }

  FormulaPtr RandAtom() {
    const RelSpec& rel = kRels[Uniform(4)];
    std::vector<Term> terms;
    for (int i = 0; i < rel.arity; ++i) terms.push_back(RandTerm());
    // prev atoms only for s, which the context's prev layer populates.
    bool prev = std::string(rel.name) == "s" && Chance(30);
    return Formula::MakeAtom(Atom{rel.name, prev, std::move(terms), {}});
  }

  FormulaPtr RandFormula(int depth) {
    if (depth <= 0) {
      switch (Uniform(6)) {
        case 0:
          return Formula::True();
        case 1:
          return Formula::False();
        case 2:
          return Formula::Equals(RandTerm(), RandTerm());
        default:
          return RandAtom();
      }
    }
    switch (Uniform(6)) {
      case 0:
        return Formula::Not(RandFormula(depth - 1));
      case 1:
      case 2: {
        std::vector<FormulaPtr> parts;
        int n = 2 + Uniform(2);
        for (int i = 0; i < n; ++i) parts.push_back(RandFormula(depth - 1));
        return Uniform(2) == 0 ? Formula::And(std::move(parts))
                               : Formula::Or(std::move(parts));
      }
      case 3:
      case 4: {
        std::vector<std::string> vars;
        vars.push_back(kVars[Uniform(4)]);
        if (Chance(40)) vars.push_back(kVars[Uniform(4)]);
        FormulaPtr body = RandFormula(depth - 1);
        return Uniform(2) == 0
                   ? Formula::Exists(std::move(vars), std::move(body))
                   : Formula::Forall(std::move(vars), std::move(body));
      }
      default:
        return RandFormula(0);
    }
  }

  Instance RandInstance(int max_tuples) {
    Instance inst;
    for (const RelSpec& rel : kRels) {
      EXPECT_TRUE(inst.EnsureRelation(rel.name, rel.arity).ok());
      int n = Uniform(max_tuples + 1);
      for (int t = 0; t < n; ++t) {
        Tuple tuple;
        for (int i = 0; i < rel.arity; ++i) tuple.push_back(RandValue());
        for (Value v : tuple) inst.AddDomainValue(v);
        inst.MutableRelation(rel.name)->Insert(tuple);
      }
    }
    return inst;
  }

  Valuation RandValuation() {
    Valuation val;
    for (const char* v : kVars) {
      if (Chance(35)) val[v] = RandValue();
    }
    return val;
  }

  std::mt19937_64 eng_;
  std::vector<Value> values_;
};

// Compares interpreter and bytecode on one (formula, context, valuation)
// triple: same ok-ness, same verdict, and the same error code + message.
void ExpectSameBool(const FormulaPtr& f, const EvalContext& ctx,
                    const Valuation& val) {
  StatusOr<bool> interp = Evaluate(*f, ctx, val);
  auto prog = fobc::CompileBool(f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\n  formula: "
                         << f->ToString();
  StatusOr<bool> compiled = fobc::Execute(**prog, ctx, val);
  ASSERT_EQ(interp.ok(), compiled.ok())
      << "formula: " << f->ToString()
      << "\n  interp:   " << interp.status().ToString()
      << "\n  compiled: " << compiled.status().ToString();
  if (interp.ok()) {
    EXPECT_EQ(*interp, *compiled) << "formula: " << f->ToString();
  } else {
    EXPECT_EQ(interp.status().ToString(), compiled.status().ToString())
        << "formula: " << f->ToString();
  }
}

TEST(FoBytecodeDiffTest, RandomSentencesMatchInterpreter) {
  Fuzzer fz(20260809);
  for (int iter = 0; iter < 400; ++iter) {
    Instance inst = fz.RandInstance(4);
    Instance prev = fz.RandInstance(2);
    EvalContext ctx;
    ctx.AddLayer(&inst);
    ctx.SetPrevLayer(&prev);
    ctx.SetConstant("ca", fz.RandValue());
    if (fz.Chance(50)) ctx.SetConstant("cb", fz.RandValue());
    FormulaPtr f = fz.RandFormula(1 + fz.Uniform(3));
    ExpectSameBool(f, ctx, fz.RandValuation());
    if (HasFailure()) {
      ADD_FAILURE() << "first divergence at iteration " << iter;
      break;
    }
  }
}

TEST(FoBytecodeDiffTest, RandomQueriesMatchInterpreter) {
  Fuzzer fz(424242);
  for (int iter = 0; iter < 250; ++iter) {
    Instance inst = fz.RandInstance(4);
    EvalContext ctx;
    ctx.AddLayer(&inst);
    ctx.SetConstant("ca", fz.RandValue());
    if (fz.Chance(50)) ctx.SetConstant("cb", fz.RandValue());
    FormulaPtr f = fz.RandFormula(1 + fz.Uniform(2));
    std::vector<std::string> heads;
    heads.push_back(kVars[fz.Uniform(4)]);
    if (fz.Chance(50)) {
      const char* second = kVars[fz.Uniform(4)];
      if (second != heads[0]) heads.push_back(second);
    }
    StatusOr<std::set<Tuple>> interp = EvaluateQuery(*f, heads, ctx);
    auto prog = fobc::CompileQuery(f, heads);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\n  query: "
                           << f->ToString();
    StatusOr<std::set<Tuple>> compiled = fobc::ExecuteQuery(**prog, ctx);
    ASSERT_EQ(interp.ok(), compiled.ok())
        << "query: " << f->ToString()
        << "\n  interp:   " << interp.status().ToString()
        << "\n  compiled: " << compiled.status().ToString()
        << "\n  iteration " << iter;
    if (interp.ok()) {
      EXPECT_EQ(*interp, *compiled)
          << "query: " << f->ToString() << "\n  iteration " << iter;
    } else {
      EXPECT_EQ(interp.status().ToString(), compiled.status().ToString());
    }
    if (HasFailure()) break;
  }
}

TEST(FoBytecodeDiffTest, EvaluateFastMatchesInterpreterThroughCache) {
  Fuzzer fz(7);
  Instance inst = fz.RandInstance(4);
  EvalContext ctx;
  ctx.AddLayer(&inst);
  ctx.SetConstant("ca", fz.RandValue());
  for (int iter = 0; iter < 50; ++iter) {
    FormulaPtr f = fz.RandFormula(2);
    Valuation val = fz.RandValuation();
    StatusOr<bool> fast = fobc::EvaluateFast(f, ctx, val);
    // Same cached program again: exercises the cache-hit path.
    StatusOr<bool> again = fobc::EvaluateFast(f, ctx, val);
    StatusOr<bool> interp = [&]() -> StatusOr<bool> {
      fobc::ScopedDisable oracle;
      return fobc::EvaluateFast(f, ctx, val);
    }();
    ASSERT_EQ(interp.ok(), fast.ok()) << f->ToString();
    ASSERT_EQ(interp.ok(), again.ok()) << f->ToString();
    if (interp.ok()) {
      EXPECT_EQ(*interp, *fast) << f->ToString();
      EXPECT_EQ(*interp, *again) << f->ToString();
    }
  }
}

TEST(FoBytecodeTest, StepBudgetExhaustionFailsClosed) {
  // Three unguarded domain loops over a sizeable domain: far more steps
  // than the tiny budget allows.
  Instance inst;
  ASSERT_TRUE(inst.EnsureRelation("p", 1).ok());
  for (int i = 0; i < 16; ++i) {
    Value v = Value::Intern("d" + std::to_string(i));
    inst.AddDomainValue(v);
  }
  EvalContext ctx;
  ctx.AddLayer(&inst);
  // An unsatisfiable, guard-free body: all 16^3 domain triples are
  // visited before the exists can conclude false.
  FormulaPtr body = Formula::And(
      Formula::Not(Formula::Equals(Term::Variable("x"), Term::Variable("x"))),
      Formula::Equals(Term::Variable("y"), Term::Variable("z")));
  FormulaPtr f = Formula::Exists({"x", "y", "z"}, std::move(body));
  auto prog = fobc::CompileBool(f);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  fobc::SetStepBudget(40);
  StatusOr<bool> res = fobc::Execute(**prog, ctx);
  fobc::SetStepBudget(0);  // restore the default
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();

  // With the default budget the same program completes.
  StatusOr<bool> ok = fobc::Execute(**prog, ctx);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(*ok);
}

TEST(FoBytecodeTest, SharedProgramRunsConcurrently) {
  // One cached program, many threads, per-thread contexts: exercises the
  // thread-local arena under TSan.
  FormulaPtr f = Formula::Exists(
      {"a", "b"},
      Formula::And(Formula::MakeAtom(
                       Atom{"q",
                            false,
                            {Term::Variable("a"), Term::Variable("b")},
                            {}}),
                   Formula::MakeAtom(
                       Atom{"p", false, {Term::Variable("b")}, {}})));
  std::shared_ptr<const fobc::Program> prog = fobc::GetOrCompileBool(f);
  ASSERT_NE(prog, nullptr);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Fuzzer fz(1000 + t);
      for (int iter = 0; iter < 200; ++iter) {
        Instance inst = fz.RandInstance(5);
        EvalContext ctx;
        ctx.AddLayer(&inst);
        StatusOr<bool> compiled = fobc::Execute(*prog, ctx);
        StatusOr<bool> interp = Evaluate(*f, ctx);
        if (!compiled.ok() || !interp.ok() || *compiled != *interp) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(FoBytecodeTest, GatingRespectsScopeAndProcessSwitch) {
  EXPECT_TRUE(fobc::BytecodeEnabled());
  {
    fobc::ScopedDisable d1;
    EXPECT_FALSE(fobc::BytecodeEnabled());
    {
      fobc::ScopedDisable d2;
      EXPECT_FALSE(fobc::BytecodeEnabled());
    }
    EXPECT_FALSE(fobc::BytecodeEnabled());
  }
  EXPECT_TRUE(fobc::BytecodeEnabled());
  fobc::SetBytecodeEnabled(false);
  EXPECT_FALSE(fobc::BytecodeEnabled());
  fobc::SetBytecodeEnabled(true);
}

TEST(FoBytecodeTest, QueryWithBoundHeadFallsBackIdentically) {
  Fuzzer fz(99);
  Instance inst = fz.RandInstance(4);
  EvalContext ctx;
  ctx.AddLayer(&inst);
  FormulaPtr f = Formula::MakeAtom(
      Atom{"q", false, {Term::Variable("x"), Term::Variable("y")}, {}});
  std::vector<std::string> heads = {"x", "y"};
  Valuation bound;
  bound["x"] = fz.RandValue();
  StatusOr<std::set<Tuple>> fast =
      fobc::EvaluateQueryFast(f, heads, ctx, bound);
  StatusOr<std::set<Tuple>> interp = EvaluateQuery(*f, heads, ctx, bound);
  ASSERT_TRUE(fast.ok() && interp.ok());
  EXPECT_EQ(*fast, *interp);
}

}  // namespace
}  // namespace wsv
