#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/transform.h"
#include "verify/witness_check.h"
#include "ws/builder.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

class LoginVerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
    options_.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
    options_.require_input_bounded = true;
  }

  StatusOr<LtlVerifyResult> VerifyOnDb(const std::string& prop) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    if (!p.ok()) return p.status();
    LtlVerifier verifier(&service_, options_);
    return verifier.VerifyOnDatabase(*p, db_);
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(LoginVerifyTest, SafetyPropertyHolds) {
  // CP is only reachable after a successful login.
  auto r = VerifyOnDb("G(!CP | logged_in)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->holds);
  EXPECT_TRUE(r->complete_within_bounds);
}

TEST_F(LoginVerifyTest, SuccessAndFailureAreExclusive) {
  auto r = VerifyOnDb("G(!(logged_in & error(\"failed login\")))");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->holds);
}

TEST_F(LoginVerifyTest, ViolationProducesGenuineCounterexample) {
  // MP is reachable (wrong password from the pool).
  auto r = VerifyOnDb("G(!MP)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->holds);
  ASSERT_TRUE(r->counterexample.has_value());
  const CounterExample& cex = *r->counterexample;
  // The returned lasso genuinely violates the property under the lasso
  // semantics — cross-check through an independent code path.
  auto p = ParseTemporalProperty("G(!MP)", &service_.vocab());
  ASSERT_TRUE(p.ok());
  auto again = EvaluateLtlOnLasso(*p, cex.run, cex.database, service_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(*again);
  // And through the standalone replay validator.
  Status witness = ValidateWitness(service_, *p, cex);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
}

TEST_F(LoginVerifyTest, UniversalClosureCounterexample) {
  auto r = VerifyOnDb("forall m . G(!error(m))");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->holds);
  ASSERT_TRUE(r->counterexample.has_value());
  EXPECT_EQ(r->counterexample->valuation.at("m"), V("failed login"));
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &service_.vocab());
  ASSERT_TRUE(p.ok());
  Status witness = ValidateWitness(service_, *p, *r->counterexample);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
}

TEST_F(LoginVerifyTest, EventualityFailsBecauseUserMayIdle) {
  // Example 3.2's navigation property shape: reaching CP does not force
  // ever reaching BYE (the user can idle on CP forever).
  auto r = VerifyOnDb("G(!CP) | F(CP & F(BYE))");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->holds);
}

TEST_F(LoginVerifyTest, RequiresInputBoundedWhenAsked) {
  auto ecom = BuildEcommerceService();
  ASSERT_TRUE(ecom.ok());
  LtlVerifier verifier(&*ecom, options_);
  auto p = ParseTemporalProperty("G(!ERR)", &ecom->vocab());
  ASSERT_TRUE(p.ok());
  auto r = verifier.VerifyOnDatabase(*p, EcommerceDatabase());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotInputBounded);
}

TEST_F(LoginVerifyTest, EnumeratedDatabasesFindEmptyUserTable) {
  // Over all databases (including the empty user table), login always
  // fails; CP unreachable iff user table lacks the typed pair. G(!CP)
  // must be violated on some database where the pool pair is present.
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  LtlVerifier verifier(&service_, options);
  auto p = ParseTemporalProperty("G(!CP)", &service_.vocab());
  ASSERT_TRUE(p.ok());
  auto r = verifier.Verify(*p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
  EXPECT_GE(r->databases_checked, 1u);
}

// --- error-freeness ----------------------------------------------------------

TEST(ErrorFreeTest, LoginServiceIsErrorFree) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  ErrorFreeOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  auto r = CheckErrorFreeOnDatabase(*ws, LoginDatabase(), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->error_free) << r->witness->ToString();
}

TEST(ErrorFreeTest, PaperClearLoopIsNot) {
  auto ws = BuildPaperClearLoopService();
  ASSERT_TRUE(ws.ok());
  ErrorFreeOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  auto r = CheckErrorFreeOnDatabase(*ws, LoginDatabase(), options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->error_free);
  ASSERT_TRUE(r->witness.has_value());
  EXPECT_NE(r->witness->reason.find("condition ii"), std::string::npos)
      << r->witness->reason;
  // The witness path ends on the page that triggered the error.
  EXPECT_FALSE(r->witness->path.empty());
}

TEST(ErrorFreeTest, AmbiguousTargetsDetected) {
  ServiceBuilder b("Amb");
  b.Input("go", 0);
  b.Page("HP").UseInput("go").Target("A", "go").Target("B", "go");
  b.Page("A");
  b.Page("B");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  ErrorFreeOptions options;
  Instance db;
  auto r = CheckErrorFreeOnDatabase(*ws, db, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->error_free);
  EXPECT_NE(r->witness->reason.find("condition iii"), std::string::npos);
}

TEST(ErrorFreeTest, UnprovidedConstantDetected) {
  // CP's rule uses `name`, which CP does not request and HP never
  // provided... HP does request it here, so route through a page that
  // uses `password` never requested anywhere.
  ServiceBuilder b("Miss");
  b.Database("user", 2);
  b.InputConstant("name").InputConstant("password");
  b.Input("go", 0);
  b.Page("HP").UseInput("go").UseInput("name").Target("CP", "go");
  b.Page("CP").Insert("s", "user(name, password)");
  b.State("s", 0);
  EXPECT_FALSE(b.Build().ok());  // states declared after pages
}

TEST(ErrorFreeTest, UnprovidedConstantDetectedAtRuntime) {
  ServiceBuilder b("Miss");
  b.Database("user", 2);
  b.State("s", 0);
  b.InputConstant("name");
  b.InputConstant("password");
  b.Input("go", 0);
  b.Page("HP").UseInput("go").UseInput("name").Target("CP", "go");
  b.Page("CP").Insert("s", "user(name, password)");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  ErrorFreeOptions options;
  options.graph.constant_pool = {V("a")};
  Instance db;
  ASSERT_TRUE(db.AddFact("user", {V("a"), V("a")}).ok());
  auto r = CheckErrorFreeOnDatabase(*ws, db, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->error_free);
  EXPECT_NE(r->witness->reason.find("condition i"), std::string::npos);
}

// --- Lemma A.5: error-freeness via transformation ---------------------------

TEST(TransformErrorFreeTest, AgreesWithDirectCheckOnErrorFreeService) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  auto tr = TransformErrorFree(*ws);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  // The transformed service never reaches the trap page.
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  options.require_input_bounded = false;  // trap guards add negations
  LtlVerifier verifier(&tr->service, options);
  auto r = verifier.VerifyOnDatabase(tr->property, LoginDatabase());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->holds) << r->counterexample->ToString();
}

TEST(TransformErrorFreeTest, AgreesOnErroringService) {
  auto ws = BuildPaperClearLoopService();
  ASSERT_TRUE(ws.ok());
  auto tr = TransformErrorFree(*ws);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  LtlVerifier verifier(&tr->service, options);
  auto r = verifier.VerifyOnDatabase(tr->property, LoginDatabase());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
  // And the transformed service itself is error-free (Lemma A.5).
  ErrorFreeOptions ef;
  ef.graph.constant_pool = {V("alice"), V("pw")};
  auto direct = CheckErrorFreeOnDatabase(tr->service, LoginDatabase(), ef);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->error_free) << direct->witness->ToString();
}

TEST(TransformErrorFreeTest, AmbiguityRoutedToTrap) {
  ServiceBuilder b("Amb");
  b.Input("go", 0);
  b.Page("HP").UseInput("go").Target("A", "go").Target("B", "go");
  b.Page("A");
  b.Page("B");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok());
  auto tr = TransformErrorFree(*ws);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  LtlVerifier verifier(&tr->service, options);
  Instance db;
  auto r = verifier.VerifyOnDatabase(tr->property, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
}

// --- Lemma A.10: reduction to simple services --------------------------------

TEST(TransformSimpleTest, ProducesValidSinglePageService) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  auto tr = TransformToSimple(*ws);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_EQ(tr->service.pages().size(), 1u);
  // Input constants became database constants.
  EXPECT_TRUE(tr->service.vocab().InputConstants().empty());
  EXPECT_TRUE(tr->service.vocab().IsConstant("name"));
}

TEST(TransformSimpleTest, BehaviorMatchesPerConstantAssignment) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  auto tr = TransformToSimple(*ws);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();

  auto p = ParseTemporalProperty("G(!MP)", &ws->vocab());
  ASSERT_TRUE(p.ok());
  auto rewritten = RewritePropertyForSimple(*p, *ws, *tr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  LtlVerifyOptions options;
  options.require_input_bounded = false;
  LtlVerifier verifier(&tr->service, options);

  // Correct credentials: MP unreachable.
  Instance good = LoginDatabase();
  good.SetConstant("name", V("alice"));
  good.SetConstant("password", V("pw"));
  auto r1 = verifier.VerifyOnDatabase(*rewritten, good);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->holds) << r1->counterexample->ToString();

  // Wrong credentials: the MP marker is reached.
  Instance bad = LoginDatabase();
  bad.SetConstant("name", V("alice"));
  bad.SetConstant("password", V("wrong"));
  auto r2 = verifier.VerifyOnDatabase(*rewritten, bad);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2->holds);
}

// --- The paper's e-commerce properties ---------------------------------------

class EcommerceVerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildEcommerceService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = EcommerceSmallDatabase();
    // Keep the constant pool tight: the session user is alice.
    options_.graph.constant_pool = {V("alice"), V("pw")};
    options_.require_input_bounded = false;  // CC/UPP/VOP/POP options
  }

  StatusOr<LtlVerifyResult> VerifyOnDb(const std::string& prop) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    if (!p.ok()) return p.status();
    LtlVerifier verifier(&service_, options_);
    return verifier.VerifyOnDatabase(*p, db_);
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(EcommerceVerifyTest, PayBeforeShipHolds) {
  // Property (4) of Example 3.4: any shipped product was paid for, with
  // the payment step (beta') occurring strictly before conf & ship.
  // Closure variables only matter on catalog values: restrict the
  // valuation candidates to them (sound; violating pid/price must be in
  // prod_prices for conf & ship to co-occur).
  options_.closure_candidates = {V("p1"), V("100"), V("alice")};
  std::string beta =
      "(UPP & payamount(price) & button(\"submit\") & pick(pid, price) "
      "& prod_prices(pid, price))";
  auto r = VerifyOnDb("forall pid, price . (" + beta +
                      " B !(conf(name, price) & ship(name, pid)))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->holds) << r->counterexample->ToString();
  EXPECT_TRUE(r->complete_within_bounds);
}

TEST_F(EcommerceVerifyTest, NavigationEventualityFails) {
  // Property (1) of Example 3.2 with P = PIP, Q = CC: the user may
  // never visit the cart.
  auto r = VerifyOnDb("G(!PIP) | F(PIP & F(CC))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
}

TEST_F(EcommerceVerifyTest, ErrorFreeOnFixture) {
  ErrorFreeOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  auto r = CheckErrorFreeOnDatabase(service_, db_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->error_free) << r->witness->ToString();
}

}  // namespace
}  // namespace wsv
