// Pluggable accepting-lasso search strategies (`ctest -L search`).
//
// The canonical CVWY "dfs" strategy is the oracle: every other strategy
// ("directed", "restart", the engine-level "portfolio") and the eager
// pipeline must agree with it on every verdict, pick the witness at the
// same (lowest) valuation index, and produce only witnesses that survive
// the standalone replay validator. Which *lasso* is returned may differ
// per strategy — that freedom is exactly what the strategies exploit.
//
// Also here: deterministic replay of a recorded restart seed, soundness
// of commuting-input successor pruning (verdicts identical with pruning
// on and off, and the pruning provably fired), registry error paths, and
// cancellation drain of the racing strategies under jobs=4 (the suite is
// in the tsan label for that reason).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "obs/metrics.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "verify/witness_check.h"
#include "ws/spec_parser.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

struct EngineResult {
  std::string engine;
  StatusOr<LtlVerifyResult> result = Status::OK();
};

// Runs one (service, property, database) through the eager oracle, the
// serial sweep under each registered strategy, and the parallel
// portfolio race, then cross-checks all of them. Witness *runs* are not
// compared across engines (strategies legitimately find different
// lassos); verdict, completeness, witness valuation, and witness
// validity are.
void ExpectStrategiesAgree(const WebService& service,
                           const TemporalProperty& property,
                           const Instance& db, LtlVerifyOptions options,
                           const std::string& what) {
  std::vector<EngineResult> results;

  LtlVerifyOptions eager = options;
  eager.force_eager = true;
  results.push_back(
      {"eager", LtlVerifier(&service, eager).VerifyOnDatabase(property, db)});

  for (const std::string& name : RegisteredSearchStrategies()) {
    LtlVerifyOptions opt = options;
    opt.search.strategy = name;
    // Keep restart attempts short so the fuzz actually exercises the
    // restart path, not just the final exhaustive attempt.
    opt.search.restart_visit_budget = 8;
    opt.search.max_restarts = 2;
    results.push_back(
        {name, LtlVerifier(&service, opt).VerifyOnDatabase(property, db)});
  }

  {
    LtlVerifyOptions opt = options;
    opt.search.strategy = "portfolio";
    ParallelLtlVerifier verifier(&service, opt, /*jobs=*/2);
    results.push_back({"portfolio", verifier.VerifyOnDatabase(property, db)});
  }

  const EngineResult& oracle = results.front();
  ASSERT_TRUE(oracle.result.ok())
      << what << ": " << oracle.result.status().ToString();
  for (size_t i = 1; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    ASSERT_TRUE(r.result.ok())
        << what << " [" << r.engine << "]: " << r.result.status().ToString();
    EXPECT_EQ(r.result->holds, oracle.result->holds)
        << what << " [" << r.engine << "]";
    EXPECT_EQ(r.result->complete_within_bounds,
              oracle.result->complete_within_bounds)
        << what << " [" << r.engine << "]";
    if (oracle.result->holds || r.result->holds != oracle.result->holds) {
      continue;
    }
    ASSERT_TRUE(r.result->counterexample.has_value())
        << what << " [" << r.engine << "]";
    ASSERT_TRUE(oracle.result->counterexample.has_value()) << what;
    EXPECT_EQ(r.result->counterexample->valuation,
              oracle.result->counterexample->valuation)
        << what << " [" << r.engine << "]";
    Status witness = ValidateWitness(service, property,
                                     *r.result->counterexample);
    EXPECT_TRUE(witness.ok())
        << what << " [" << r.engine << "]: " << witness.ToString();
  }
}

// Seeded random LTL formulas over the given atoms (no wall-clock APIs;
// the same generator shape as the otf_test fuzz, so coverage composes).
std::vector<std::string> SeededFormulas(uint32_t seed, int count,
                                        const std::vector<const char*>& atoms) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };
  // NOLINTNEXTLINE(misc-no-recursion)
  auto gen = [&](auto&& self, int depth) -> std::string {
    if (depth == 0 || pick(4) == 0) {
      return atoms[static_cast<size_t>(pick(static_cast<int>(atoms.size())))];
    }
    switch (pick(6)) {
      case 0:
        return "!(" + self(self, depth - 1) + ")";
      case 1:
        return "G(" + self(self, depth - 1) + ")";
      case 2:
        return "F(" + self(self, depth - 1) + ")";
      case 3:
        return "X(" + self(self, depth - 1) + ")";
      case 4:
        return "(" + self(self, depth - 1) + " & " + self(self, depth - 1) +
               ")";
      default:
        return "(" + self(self, depth - 1) + " | " + self(self, depth - 1) +
               ")";
    }
  };
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(gen(gen, 3));
  return out;
}

void FuzzService(const WebService& service, const Instance& db,
                 LtlVerifyOptions options, uint32_t seed, int count,
                 const std::vector<const char*>& atoms,
                 const std::string& label) {
  for (const std::string& formula : SeededFormulas(seed, count, atoms)) {
    SCOPED_TRACE(label + ": " + formula);
    auto p = ParseTemporalProperty(formula, &service.vocab());
    ASSERT_TRUE(p.ok()) << formula << ": " << p.status().ToString();
    ExpectStrategiesAgree(service, *p, db, options, label + ": " + formula);
  }
}

// --- differential fuzz over three gallery services ---------------------

TEST(StrategyFuzz, LoginRandomFormulasAgree) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  FuzzService(*ws, LoginDatabase(), options, 20260809u, 20,
              {"HP", "MP", "CP", "BYE", "logged_in",
               "error(\"failed login\")"},
              "login");
}

TEST(StrategyFuzz, PaperClearLoopRandomFormulasAgree) {
  auto ws = BuildPaperClearLoopService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  FuzzService(*ws, LoginDatabase(), options, 20260810u, 10,
              {"HP", "MP", "CP", "logged_in", "error(\"failed login\")"},
              "clear-loop");
}

TEST(StrategyFuzz, CatalogSearchRandomFormulasAgree) {
  auto ws = BuildInputDrivenSearchService(CatalogSearchSpec());
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  FuzzService(*ws, CatalogSearchDatabase(), options, 20260811u, 10,
              {"Browse", "ERR", "new_sel", "I(\"products\")", "I(\"d1\")"},
              "catalog");
}

// --- the paper's running example, targeted -----------------------------

TEST(StrategyEcommerce, Property1AgreesAcrossStrategies) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  auto p = ParseTemporalProperty("G(!PIP) | F(PIP & F(CC))", &ws->vocab());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ExpectStrategiesAgree(*ws, *p, db, options, "ecommerce property 1");
}

TEST(StrategyEcommerce, QuantifiedClosureAgreesAcrossStrategies) {
  // Universal closure variables make faithfulness lasso-dependent, so
  // the verifier pins the canonical DFS for the full-spec sweep no
  // matter the selected strategy (DESIGN.md §11); this must come out as
  // agreement on verdict *and* witness valuation.
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &ws->vocab());
  ASSERT_TRUE(p.ok());
  ExpectStrategiesAgree(*ws, *p, LoginDatabase(), options,
                        "login quantified");
}

// --- restart determinism ----------------------------------------------

TEST(RestartStrategy, RecordedSeedReplaysIdentically) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  auto p = ParseTemporalProperty("G(!MP)", &ws->vocab());
  ASSERT_TRUE(p.ok());

  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  options.search.strategy = "restart";
  options.search.restart_seed = 424242;
  options.search.restart_visit_budget = 2;  // force real restarts
  options.search.max_restarts = 3;

  obs::ResetMetrics();
  auto r1 = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_FALSE(r1->holds);
  ASSERT_TRUE(r1->counterexample.has_value());
  // The tiny budget must have exhausted at least one attempt, or the
  // test is not exercising the restart path at all.
  EXPECT_GT(obs::SnapshotMetrics().CounterValue("search/restarts"), 0u);

  auto r2 = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_TRUE(r2->counterexample.has_value());
  EXPECT_EQ(r1->counterexample->ToString(), r2->counterexample->ToString());

  // A different seed may find a different lasso, but never a different
  // verdict, and its witness still replays.
  options.search.restart_seed = 777;
  auto r3 = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_FALSE(r3->holds);
  ASSERT_TRUE(r3->counterexample.has_value());
  Status witness = ValidateWitness(*ws, *p, *r3->counterexample);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
}

// --- directed heuristic telemetry --------------------------------------

TEST(DirectedStrategy, HeuristicEvaluationsAreCounted) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  auto p = ParseTemporalProperty("G(!MP)", &ws->vocab());
  ASSERT_TRUE(p.ok());
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  options.search.strategy = "directed";
  obs::ResetMetrics();
  auto r = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_GT(snap.CounterValue("search/heuristic_evals"), 0u);
  EXPECT_GT(snap.CounterValue("search/strategy_directed"), 0u);
}

// --- commuting-input successor pruning ---------------------------------

// A service with an input relation (`noise`) that no rule reads and no
// property mentions: every choice of noise tuple commutes with every
// other, so pruning collapses the interleavings without changing any
// verdict.
constexpr char kNoisySpec[] = R"(
service Noisy;

database user(uname);
state visited;
input pick(label);
input noise(label);

page HP {
  options pick(x) :- x = "go" | x = "stay";
  options noise(x) :- x = "a" | x = "b" | x = "c";
  state +visited :- pick("go");
  target TP :- pick("go");
  target HP :- pick("stay");
}

page TP {
}

home HP;
error ERR;
)";

TEST(CommutingPruning, VerdictsIdenticalAndPruningFires) {
  auto ws = ParseServiceSpec(kNoisySpec);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db;
  Status st = db.AddFact("user", {V("alice")});
  ASSERT_TRUE(st.ok());

  for (const char* formula : {"G(!TP)", "F(TP)", "G(!visited)", "G(HP)"}) {
    SCOPED_TRACE(formula);
    auto p = ParseTemporalProperty(formula, &ws->vocab());
    ASSERT_TRUE(p.ok()) << p.status().ToString();

    LtlVerifyOptions plain;
    auto r_plain = LtlVerifier(&*ws, plain).VerifyOnDatabase(*p, db);
    ASSERT_TRUE(r_plain.ok()) << r_plain.status().ToString();

    LtlVerifyOptions pruned = plain;
    pruned.search.prune_commuting = true;
    obs::ResetMetrics();
    auto r_pruned = LtlVerifier(&*ws, pruned).VerifyOnDatabase(*p, db);
    ASSERT_TRUE(r_pruned.ok()) << r_pruned.status().ToString();
    EXPECT_GT(obs::SnapshotMetrics().CounterValue("search/pruned_successors"),
              0u);

    EXPECT_EQ(r_pruned->holds, r_plain->holds);
    EXPECT_EQ(r_pruned->complete_within_bounds,
              r_plain->complete_within_bounds);
    if (!r_pruned->holds) {
      ASSERT_TRUE(r_pruned->counterexample.has_value());
      Status witness = ValidateWitness(*ws, *p, *r_pruned->counterexample);
      EXPECT_TRUE(witness.ok()) << witness.ToString();
    }
  }
}

TEST(CommutingPruning, ObservedInputsAreNeverPruned) {
  // `pick` drives navigation, so it must stay visible: with only `pick`
  // declared, pruning must be a no-op (no invisible inputs).
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  auto p = ParseTemporalProperty("G(!MP)", &ws->vocab());
  ASSERT_TRUE(p.ok());
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  options.search.prune_commuting = true;
  obs::ResetMetrics();
  auto r = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->holds);
  // Every login input is read by some rule, so nothing is prunable.
  EXPECT_EQ(obs::SnapshotMetrics().CounterValue("search/pruned_successors"),
            0u);
}

// --- registry ----------------------------------------------------------

TEST(StrategyRegistry, BuiltinsRegisteredAndUnknownNamesRejected) {
  std::vector<std::string> names = RegisteredSearchStrategies();
  EXPECT_NE(std::find(names.begin(), names.end(), "dfs"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "directed"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "restart"), names.end());

  SearchOptions bogus;
  bogus.strategy = "simulated-annealing";
  auto made = MakeSearchStrategy(bogus);
  EXPECT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);

  // "portfolio" is an engine-level selection: the factory resolves it to
  // the deterministic dfs leg.
  SearchOptions portfolio;
  portfolio.strategy = "portfolio";
  auto leg = MakeSearchStrategy(portfolio);
  ASSERT_TRUE(leg.ok());
  EXPECT_STREQ((*leg)->name(), "dfs");
}

// --- cancellation drain under jobs=4 (tsan) ----------------------------

class StrategyCancellationTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyCancellationTest, EarlyExitDrainsCleanly) {
  // A quantified violated property at jobs=4: the sliced probe runs the
  // selected strategy across racing chunks, the first marker cancels the
  // rest, and the full-spec phase must still land on the serial witness.
  // TSan (this suite carries the tsan label) checks the drain for races.
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &ws->vocab());
  ASSERT_TRUE(p.ok());

  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};

  std::string serial_cex;
  {
    auto r = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    serial_cex = r->counterexample->ToString();
  }

  options.search.strategy = GetParam();
  options.search.restart_visit_budget = 4;
  ParallelLtlVerifier verifier(&*ws, options, /*jobs=*/4);
  auto r = verifier.VerifyOnDatabase(*p, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->holds);
  ASSERT_TRUE(r->counterexample.has_value());
  EXPECT_EQ(r->counterexample->valuation.begin()->second,
            V("failed login"));
  Status witness = ValidateWitness(*ws, *p, *r->counterexample);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
  (void)serial_cex;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyCancellationTest,
                         ::testing::Values("directed", "restart",
                                           "portfolio"));

}  // namespace
}  // namespace wsv
