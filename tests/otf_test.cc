// On-the-fly vs eager pipeline equivalence, witness validation, and
// determinism (`ctest -L otf`).
//
// The on-the-fly nested-DFS path is the default; the eager pipeline
// (full configuration graph + full product + SCC emptiness) is the
// oracle it is checked against, per property:
//   - identical verdicts on the gallery services and on seeded random
//     formulas,
//   - every VIOLATED verdict yields a witness that survives the
//     standalone replay validator,
//   - lowest-valuation-index witness selection is deterministic, and
//     the `force_eager` option matches the WSV_DISABLE_ONTHEFLY toggle.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "verify/witness_check.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// Forces the eager pipeline via the environment for one scope, the way
// `WSV_DISABLE_ONTHEFLY=1 wsvcli verify` would.
struct ScopedDisableOtf {
  ScopedDisableOtf() { setenv("WSV_DISABLE_ONTHEFLY", "1", 1); }
  ~ScopedDisableOtf() { unsetenv("WSV_DISABLE_ONTHEFLY"); }
};

// Runs one (service, property, database) through both pipelines and
// requires verdict agreement. On VIOLATED both must pick the witness at
// the same (lowest) valuation index, and the on-the-fly witness must
// survive the independent replay validator. The lasso itself may differ
// between pipelines (different emptiness searches), so only the
// valuation is compared across them.
void ExpectEquivalent(const WebService& service,
                      const TemporalProperty& property, const Instance& db,
                      LtlVerifyOptions options, const std::string& what) {
  options.force_eager = false;
  auto r_otf = LtlVerifier(&service, options).VerifyOnDatabase(property, db);
  options.force_eager = true;
  auto r_eager = LtlVerifier(&service, options).VerifyOnDatabase(property, db);
  ASSERT_EQ(r_otf.ok(), r_eager.ok())
      << what << ": otf=" << r_otf.status().ToString()
      << " eager=" << r_eager.status().ToString();
  if (!r_otf.ok()) return;
  EXPECT_EQ(r_otf->holds, r_eager->holds) << what;
  EXPECT_EQ(r_otf->complete_within_bounds, r_eager->complete_within_bounds)
      << what;
  if (r_otf->holds || r_otf->holds != r_eager->holds) return;
  ASSERT_TRUE(r_otf->counterexample.has_value()) << what;
  ASSERT_TRUE(r_eager->counterexample.has_value()) << what;
  EXPECT_EQ(r_otf->counterexample->valuation, r_eager->counterexample->valuation)
      << what;
  Status otf_witness = ValidateWitness(service, property, *r_otf->counterexample);
  EXPECT_TRUE(otf_witness.ok()) << what << ": " << otf_witness.ToString();
  Status eager_witness =
      ValidateWitness(service, property, *r_eager->counterexample);
  EXPECT_TRUE(eager_witness.ok()) << what << ": " << eager_witness.ToString();
}

class LoginOtfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
    options_.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  }

  void CheckProperty(const std::string& prop) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    ASSERT_TRUE(p.ok()) << prop << ": " << p.status().ToString();
    ExpectEquivalent(service_, *p, db_, options_, prop);
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(LoginOtfTest, GalleryPropertiesAgree) {
  // The verify_test fixtures: a mix of HOLDS, VIOLATED, and
  // universally-closed properties.
  CheckProperty("G(!CP | logged_in)");
  CheckProperty("G(!(logged_in & error(\"failed login\")))");
  CheckProperty("G(!MP)");
  CheckProperty("forall m . G(!error(m))");
  CheckProperty("G(!CP) | F(CP & F(BYE))");
  CheckProperty("F(BYE)");
}

TEST_F(LoginOtfTest, SeededRandomFormulasAgree) {
  // Seeded formula fuzzing (no wall-clock APIs): both pipelines must
  // agree on every generated formula, and every violation witness must
  // replay. Atoms cover pages, a state proposition, and an FO leaf.
  std::mt19937 rng(20260806u);
  auto pick = [&rng](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };
  const char* atoms[] = {"HP",  "MP",        "CP",
                         "BYE", "logged_in", "error(\"failed login\")"};
  // NOLINTNEXTLINE(misc-no-recursion)
  auto gen = [&](auto&& self, int depth) -> std::string {
    if (depth == 0 || pick(4) == 0) return atoms[pick(6)];
    switch (pick(6)) {
      case 0:
        return "!(" + self(self, depth - 1) + ")";
      case 1:
        return "G(" + self(self, depth - 1) + ")";
      case 2:
        return "F(" + self(self, depth - 1) + ")";
      case 3:
        return "X(" + self(self, depth - 1) + ")";
      case 4:
        return "(" + self(self, depth - 1) + " & " + self(self, depth - 1) +
               ")";
      default:
        return "(" + self(self, depth - 1) + " | " + self(self, depth - 1) +
               ")";
    }
  };
  for (int i = 0; i < 40; ++i) {
    const std::string formula = gen(gen, 3);
    SCOPED_TRACE("seed formula #" + std::to_string(i) + ": " + formula);
    CheckProperty(formula);
  }
}

TEST_F(LoginOtfTest, OnTheFlyWitnessIsDeterministic) {
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &service_.vocab());
  ASSERT_TRUE(p.ok());
  LtlVerifier verifier(&service_, options_);
  auto r1 = verifier.VerifyOnDatabase(*p, db_);
  auto r2 = verifier.VerifyOnDatabase(*p, db_);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_FALSE(r1->holds);
  ASSERT_TRUE(r1->counterexample.has_value() &&
              r2->counterexample.has_value());
  EXPECT_EQ(r1->counterexample->ToString(), r2->counterexample->ToString());
}

TEST_F(LoginOtfTest, ForceEagerMatchesEnvironmentToggle) {
  // `--eager` (the option) and WSV_DISABLE_ONTHEFLY=1 (the environment
  // oracle switch) must select the same pipeline: identical witnesses,
  // byte for byte.
  auto p = ParseTemporalProperty("G(!MP)", &service_.vocab());
  ASSERT_TRUE(p.ok());
  LtlVerifyOptions options = options_;
  options.force_eager = true;
  auto r_flag = LtlVerifier(&service_, options).VerifyOnDatabase(*p, db_);
  std::string env_cex;
  {
    ScopedDisableOtf disable;
    auto r_env = LtlVerifier(&service_, options_).VerifyOnDatabase(*p, db_);
    ASSERT_TRUE(r_env.ok());
    ASSERT_TRUE(r_env->counterexample.has_value());
    env_cex = r_env->counterexample->ToString();
  }
  ASSERT_TRUE(r_flag.ok());
  ASSERT_TRUE(r_flag->counterexample.has_value());
  EXPECT_EQ(r_flag->counterexample->ToString(), env_cex);
}

TEST_F(LoginOtfTest, ParallelJobsAgreeWithSerial) {
  // The sharded sweep runs an independent on-the-fly search per chunk;
  // lowest-index witness selection must make jobs irrelevant.
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &service_.vocab());
  ASSERT_TRUE(p.ok());
  std::string cex1, cex4;
  {
    ParallelLtlVerifier verifier(&service_, options_, /*jobs=*/1);
    auto r = verifier.VerifyOnDatabase(*p, db_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    ASSERT_TRUE(r->counterexample.has_value());
    Status w = ValidateWitness(service_, *p, *r->counterexample);
    EXPECT_TRUE(w.ok()) << w.ToString();
    cex1 = r->counterexample->ToString();
  }
  {
    ParallelLtlVerifier verifier(&service_, options_, /*jobs=*/4);
    auto r = verifier.VerifyOnDatabase(*p, db_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    ASSERT_TRUE(r->counterexample.has_value());
    cex4 = r->counterexample->ToString();
  }
  EXPECT_EQ(cex1, cex4);
}

// --- the paper's running example -------------------------------------

class EcommerceOtfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildEcommerceService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = EcommerceSmallDatabase();
    options_.graph.constant_pool = {V("alice"), V("pw")};
    options_.require_input_bounded = false;
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(EcommerceOtfTest, Property1ViolatedIdentically) {
  // Paper Property 1 (eventuality not enforced): the flagship early-exit
  // case — the on-the-fly search finds the lasso in ~100 product states
  // where the eager pipeline builds 159k.
  auto p = ParseTemporalProperty("G(!PIP) | F(PIP & F(CC))",
                                 &service_.vocab());
  ASSERT_TRUE(p.ok());
  ExpectEquivalent(service_, *p, db_, options_, "property 1");
}

TEST_F(EcommerceOtfTest, Property4HoldsIdentically) {
  // Paper Property 4 (pay-before-ship): HOLDS, so the on-the-fly search
  // must sweep every valuation to the end and still agree.
  LtlVerifyOptions options = options_;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  auto p = ParseTemporalProperty(
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))",
      &service_.vocab());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ExpectEquivalent(service_, *p, db_, options, "property 4");
}

// --- witness validator negatives --------------------------------------

class WitnessTamperTest : public LoginOtfTest {
 protected:
  CounterExample GenuineCex(const std::string& prop, TemporalProperty* out) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    EXPECT_TRUE(p.ok());
    *out = *p;
    auto r = LtlVerifier(&service_, options_).VerifyOnDatabase(*p, db_);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->holds);
    return *r->counterexample;
  }
};

TEST_F(WitnessTamperTest, RejectsEmptyRun) {
  TemporalProperty p;
  CounterExample cex = GenuineCex("G(!MP)", &p);
  cex.run.steps.clear();
  EXPECT_FALSE(ValidateWitness(service_, p, cex).ok());
}

TEST_F(WitnessTamperTest, RejectsOutOfRangeLoopStart) {
  TemporalProperty p;
  CounterExample cex = GenuineCex("G(!MP)", &p);
  cex.run.loop_start = cex.run.steps.size();
  EXPECT_FALSE(ValidateWitness(service_, p, cex).ok());
}

TEST_F(WitnessTamperTest, RejectsForgedPage) {
  TemporalProperty p;
  CounterExample cex = GenuineCex("G(!MP)", &p);
  // Rename the violating page: the claimed run no longer replays.
  for (auto& step : cex.run.steps) {
    if (step.page == "MP") step.page = "CP";
  }
  EXPECT_FALSE(ValidateWitness(service_, p, cex).ok());
}

TEST_F(WitnessTamperTest, RejectsUnboundValuation) {
  TemporalProperty p;
  CounterExample cex = GenuineCex("forall m . G(!error(m))", &p);
  cex.valuation.clear();
  EXPECT_FALSE(ValidateWitness(service_, p, cex).ok());
}

TEST_F(WitnessTamperTest, RejectsNonViolatingValuation) {
  TemporalProperty p;
  CounterExample cex = GenuineCex("forall m . G(!error(m))", &p);
  // The run is legal but under this binding the formula is satisfied,
  // so the witness claims a violation it does not exhibit.
  cex.valuation["m"] = V("not an error message");
  EXPECT_FALSE(ValidateWitness(service_, p, cex).ok());
}

}  // namespace
}  // namespace wsv
