#include <gtest/gtest.h>

#include "fo/etc.h"
#include "fo/parser.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

class EtcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A little graph: a -> b -> c, plus isolated d.
    ASSERT_TRUE(graph_.AddFact("E", {V("a"), V("b")}).ok());
    ASSERT_TRUE(graph_.AddFact("E", {V("b"), V("c")}).ok());
    graph_.AddDomainValue(V("d"));
    ctx_.AddLayer(&graph_);
  }

  Instance graph_;
  EvalContext ctx_;
};

TEST_F(EtcTest, FoLeafEvaluation) {
  auto edge = ParseFormula("E(x, y)");
  ASSERT_TRUE(edge.ok());
  EtcPtr f = EtcFormula::Exists(
      {"x", "y"}, EtcFormula::Fo(*edge));
  auto r = EvaluateEtc(*f, ctx_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST_F(EtcTest, TransitiveClosureReachability) {
  auto edge = ParseFormula("E(x, y)");
  ASSERT_TRUE(edge.ok());
  auto tc = [&](const char* from, const char* to) {
    EtcPtr f = EtcFormula::Tc({"x"}, {"y"}, EtcFormula::Fo(*edge),
                              {Term::Literal(V(from))},
                              {Term::Literal(V(to))});
    auto r = EvaluateEtc(*f, ctx_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  };
  EXPECT_TRUE(tc("a", "b"));
  EXPECT_TRUE(tc("a", "c"));   // two hops
  EXPECT_TRUE(tc("a", "a"));   // reflexive by convention
  EXPECT_FALSE(tc("c", "a"));  // no back edges
  EXPECT_FALSE(tc("a", "d"));  // isolated
}

TEST_F(EtcTest, BooleanStructure) {
  auto ab = ParseFormula("E(\"a\", \"b\")");
  auto ca = ParseFormula("E(\"c\", \"a\")");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ca.ok());
  EtcPtr both = EtcFormula::And({EtcFormula::Fo(*ab), EtcFormula::Fo(*ca)});
  EXPECT_FALSE(*EvaluateEtc(*both, ctx_));
  EtcPtr either = EtcFormula::Or({EtcFormula::Fo(*ab), EtcFormula::Fo(*ca)});
  EXPECT_TRUE(*EvaluateEtc(*either, ctx_));
}

TEST_F(EtcTest, ExistentialOverTc) {
  // exists z reachable from a with an outgoing edge: z = b.
  auto edge = ParseFormula("E(x, y)");
  auto out = ParseFormula("E(z, w)");
  ASSERT_TRUE(edge.ok());
  ASSERT_TRUE(out.ok());
  EtcPtr f = EtcFormula::Exists(
      {"z", "w"},
      EtcFormula::And(
          {EtcFormula::Tc({"x"}, {"y"}, EtcFormula::Fo(*edge),
                          {Term::Literal(V("a"))}, {Term::Variable("z")}),
           EtcFormula::Fo(*out)}));
  auto r = EvaluateEtc(*f, ctx_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST(EtcSatTest, FindsWitnessStructure) {
  // exists x, y . E(x, y): satisfiable with domain >= 1.
  auto edge = ParseFormula("E(x, y)");
  ASSERT_TRUE(edge.ok());
  EtcPtr f = EtcFormula::Exists({"x", "y"}, EtcFormula::Fo(*edge));
  auto witness = BoundedSatisfiable(*f, {{"E", 2}}, /*max_domain=*/2);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  ASSERT_TRUE(witness->has_value());
  EXPECT_GE((*witness)->FindRelation("E")->size(), 1u);
}

TEST(EtcSatTest, UnsatisfiableFormula) {
  // exists x . E(x) & !E(x) is unsatisfiable.
  auto pos = ParseFormula("E(x)");
  auto neg = ParseFormula("!E(x)");
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  EtcPtr f = EtcFormula::Exists(
      {"x"},
      EtcFormula::And({EtcFormula::Fo(*pos), EtcFormula::Fo(*neg)}));
  auto witness = BoundedSatisfiable(*f, {{"E", 1}}, /*max_domain=*/2);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_FALSE(witness->has_value());
}

TEST(EtcSatTest, TcConstraintSatisfiable) {
  // A structure where b is reachable from a: found by the search.
  auto edge = ParseFormula("E(x, y)");
  ASSERT_TRUE(edge.ok());
  EtcPtr f = EtcFormula::Exists(
      {"u", "v"},
      EtcFormula::And(
          {EtcFormula::Tc({"x"}, {"y"}, EtcFormula::Fo(*edge),
                          {Term::Variable("u")}, {Term::Variable("v")}),
           // u and v must be distinct... expressed through an FO leaf.
           EtcFormula::Fo(*ParseFormula("u != v & E(u, v)"))}));
  auto witness = BoundedSatisfiable(*f, {{"E", 2}}, /*max_domain=*/2);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(witness->has_value());
}

TEST(EtcPrintTest, ToStringRoundTrip) {
  auto edge = ParseFormula("E(x, y)");
  ASSERT_TRUE(edge.ok());
  EtcPtr f = EtcFormula::Tc({"x"}, {"y"}, EtcFormula::Fo(*edge),
                            {Term::Literal(V("a"))},
                            {Term::Literal(V("c"))});
  std::string s = f->ToString();
  EXPECT_NE(s.find("TC"), std::string::npos);
  EXPECT_NE(s.find("E(x, y)"), std::string::npos);
}

}  // namespace
}  // namespace wsv
