#include <gtest/gtest.h>

#include <random>

#include "fo/evaluator.h"
#include "fo/parser.h"
#include "fo/qf.h"

namespace wsv {
namespace {

Value V(const std::string& s) { return Value::Intern(s); }

class QfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(vocab_.AddRelation("R", 1, SymbolKind::kDatabase).ok());
    ASSERT_TRUE(vocab_.AddRelation("T", 2, SymbolKind::kDatabase).ok());
    ASSERT_TRUE(vocab_.AddRelation("s", 0, SymbolKind::kState).ok());
    ASSERT_TRUE(vocab_.AddRelation("W", 1, SymbolKind::kState).ok());
    ASSERT_TRUE(vocab_.AddRelation("I", 2, SymbolKind::kInput).ok());
    ASSERT_TRUE(vocab_.AddRelation("J", 1, SymbolKind::kInput).ok());
  }

  // Evaluates `text` directly over (db, state, inputs, prev) and through
  // the quantifier-free rewriting; both results must agree.
  void CheckAgreement(const std::string& text, const Instance& db,
                      const Instance& state, const Instance& inputs,
                      const Instance& prev) {
    auto parsed = ParseFormula(text, &vocab_);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    EvalContext direct;
    direct.AddLayer(&inputs);
    direct.AddLayer(&state);
    direct.AddLayer(&db);
    direct.SetPrevLayer(&prev);
    auto expect = Evaluate(**parsed, direct);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();

    auto qf = InputBoundedToQuantifierFree(**parsed, vocab_);
    ASSERT_TRUE(qf.ok()) << qf.status().ToString();
    EXPECT_TRUE((*qf)->IsQuantifierFree()) << (*qf)->ToString();

    // Bind the designated variables and presence propositions.
    Instance presence;
    Valuation valuation;
    Value dummy = V("__dummy");
    for (bool is_prev : {false, true}) {
      const Instance& src = is_prev ? prev : inputs;
      for (const RelationSymbol& sym :
           vocab_.RelationsOfKind(SymbolKind::kInput)) {
        const Relation* rel = src.FindRelation(sym.name);
        bool present = rel != nullptr && !rel->empty();
        (void)presence.EnsureRelation(QfPresenceProp(sym.name, is_prev), 0);
        presence.MutableRelation(QfPresenceProp(sym.name, is_prev))
            ->SetBool(present);
        for (int i = 1; i <= sym.arity; ++i) {
          Value v = present ? (*rel->tuples().begin())[i - 1] : dummy;
          valuation[QfTupleVariable(sym.name, i, is_prev)] = v;
        }
      }
    }
    EvalContext qf_ctx;
    qf_ctx.AddLayer(&presence);
    qf_ctx.AddLayer(&state);
    qf_ctx.AddLayer(&db);
    auto got = Evaluate(**qf, qf_ctx, valuation);
    ASSERT_TRUE(got.ok())
        << got.status().ToString() << "\nqf: " << (*qf)->ToString();
    EXPECT_EQ(*expect, *got)
        << "formula: " << text << "\nqf: " << (*qf)->ToString();
  }

  Vocabulary vocab_;
};

TEST_F(QfTest, RewritesGuardedQuantifiers) {
  auto f = ParseFormula("exists x, y . I(x, y) & T(x, y)", &vocab_);
  ASSERT_TRUE(f.ok());
  auto qf = InputBoundedToQuantifierFree(**f, vocab_);
  ASSERT_TRUE(qf.ok()) << qf.status().ToString();
  EXPECT_TRUE((*qf)->IsQuantifierFree());
  std::string s = (*qf)->ToString();
  EXPECT_NE(s.find("__present_I"), std::string::npos);
  EXPECT_NE(s.find("__cur_I__1"), std::string::npos);
}

TEST_F(QfTest, RejectsUnguardedQuantifiers) {
  auto f = ParseFormula("exists x . R(x) & true", &vocab_);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(InputBoundedToQuantifierFree(**f, vocab_).ok());
}

TEST_F(QfTest, HandPickedAgreement) {
  Instance db;
  ASSERT_TRUE(db.AddFact("R", {V("a")}).ok());
  ASSERT_TRUE(db.AddFact("T", {V("a"), V("b")}).ok());
  Instance state;
  ASSERT_TRUE(state.EnsureRelation("s", 0).ok());
  state.MutableRelation("s")->SetBool(true);
  ASSERT_TRUE(state.AddFact("W", {V("a")}).ok());
  Instance inputs;
  ASSERT_TRUE(inputs.AddFact("I", {V("a"), V("b")}).ok());
  ASSERT_TRUE(inputs.EnsureRelation("J", 1).ok());  // empty input
  Instance prev;
  ASSERT_TRUE(prev.AddFact("J", {V("b")}).ok());

  const char* formulas[] = {
      "I(\"a\", \"b\")",
      "I(\"a\", \"a\")",
      "J(\"a\")",
      "prev.J(\"b\")",
      "exists x, y . I(x, y) & T(x, y)",
      "exists x, y . I(x, y) & T(y, x)",
      "exists x . J(x) & R(x)",
      "exists x . prev.J(x) & !R(x)",
      "forall x, y . I(x, y) -> T(x, y)",
      "forall x . J(x) -> false",
      "s & (exists x, y . I(x, y) & W(x))",
      "!(exists x, y . I(x, y) & T(y, x)) | s",
      "exists x . I(x, x) & true",
      "(exists x, y . I(x, y) & R(x)) & (forall z . prev.J(z) -> R(z))",
  };
  for (const char* text : formulas) {
    SCOPED_TRACE(text);
    CheckAgreement(text, db, state, inputs, prev);
  }
}

// Randomized sweep: random instances, fixed formula battery.
class QfRandomTest : public QfTest,
                     public ::testing::WithParamInterface<int> {};

TEST_P(QfRandomTest, AgreementOnRandomInstances) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::vector<Value> dom{V("a"), V("b"), V("c")};
  auto pick = [&]() { return dom[rng() % dom.size()]; };
  for (int iter = 0; iter < 20; ++iter) {
    Instance db;
    for (int i = 0; i < 3; ++i) {
      if (rng() % 2) ASSERT_TRUE(db.AddFact("R", {pick()}).ok());
      if (rng() % 2) ASSERT_TRUE(db.AddFact("T", {pick(), pick()}).ok());
    }
    (void)db.EnsureRelation("R", 1);
    (void)db.EnsureRelation("T", 2);
    Instance state;
    (void)state.EnsureRelation("s", 0);
    state.MutableRelation("s")->SetBool(rng() % 2 == 0);
    (void)state.EnsureRelation("W", 1);
    if (rng() % 2) ASSERT_TRUE(state.AddFact("W", {pick()}).ok());
    Instance inputs;
    (void)inputs.EnsureRelation("I", 2);
    (void)inputs.EnsureRelation("J", 1);
    if (rng() % 2) ASSERT_TRUE(inputs.AddFact("I", {pick(), pick()}).ok());
    if (rng() % 2) ASSERT_TRUE(inputs.AddFact("J", {pick()}).ok());
    Instance prev;
    (void)prev.EnsureRelation("I", 2);
    (void)prev.EnsureRelation("J", 1);
    if (rng() % 2) ASSERT_TRUE(prev.AddFact("J", {pick()}).ok());

    const char* formulas[] = {
        "exists x, y . I(x, y) & T(x, y)",
        "exists x . J(x) & (R(x) | s)",
        "forall x, y . I(x, y) -> (R(x) | R(y))",
        "(exists x . J(x) & W(x)) | !(exists y . prev.J(y) & R(y))",
        "exists x . I(x, x) & R(x)",
    };
    for (const char* text : formulas) {
      SCOPED_TRACE(std::string(text) + " iter " + std::to_string(iter));
      CheckAgreement(text, db, state, inputs, prev);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QfRandomTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace wsv
