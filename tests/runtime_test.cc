#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "runtime/interpreter.h"
#include "runtime/successor.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

UserChoice LoginChoice(const char* name, const char* pw) {
  UserChoice c;
  c.constant_values["name"] = V(name);
  c.constant_values["password"] = V(pw);
  c.relation_choices["button"] = Tuple{V("login")};
  return c;
}

class LoginRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
    stepper_.emplace(&service_, &db_);
  }

  WebService service_;
  Instance db_;
  std::optional<Stepper> stepper_;
};

TEST_F(LoginRuntimeTest, InitialConfigMaterializesState) {
  Config c = stepper_->InitialConfig();
  EXPECT_EQ(c.page, "HP");
  ASSERT_NE(c.state.FindRelation("error"), nullptr);
  EXPECT_TRUE(c.state.FindRelation("error")->empty());
  EXPECT_TRUE(c.provided_constants.empty());
}

TEST_F(LoginRuntimeTest, OptionsComeFromRules) {
  Config c = stepper_->InitialConfig();
  std::map<std::string, Value> consts{{"name", V("alice")},
                                      {"password", V("pw")}};
  auto options = stepper_->ComputeOptions(c, consts);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->count("button"), 1u);
  EXPECT_EQ(options->at("button").size(), 2u);  // login, quit
}

TEST_F(LoginRuntimeTest, SuccessfulLoginReachesCP) {
  Config c = stepper_->InitialConfig();
  auto out = stepper_->Step(c, LoginChoice("alice", "pw"));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->to_error);
  EXPECT_EQ(out->next.page, "CP");
  EXPECT_TRUE(out->next.state.FindRelation("logged_in")->AsBool());
  EXPECT_TRUE(out->next.state.FindRelation("error")->empty());
  // kappa now holds both constants.
  EXPECT_EQ(out->next.provided_constants.size(), 2u);
  // The trace records the chosen inputs.
  EXPECT_TRUE(out->trace.inputs.FindRelation("button")->Contains(
      Tuple{V("login")}));
}

TEST_F(LoginRuntimeTest, FailedLoginRecordsErrorState) {
  Config c = stepper_->InitialConfig();
  auto out = stepper_->Step(c, LoginChoice("alice", "wrong"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->next.page, "MP");
  EXPECT_TRUE(out->next.state.FindRelation("error")->Contains(
      Tuple{V("failed login")}));
}

TEST_F(LoginRuntimeTest, EmptySubmissionEndsSession) {
  Config c = stepper_->InitialConfig();
  UserChoice choice;
  choice.constant_values["name"] = V("alice");
  choice.constant_values["password"] = V("pw");
  auto out = stepper_->Step(c, choice);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->next.page, "BYE");
}

TEST(PaperClearLoopTest, ReRequestingConstantsIsAnError) {
  auto ws = BuildPaperClearLoopService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  Stepper stepper(&*ws, &db);
  Config c = stepper.InitialConfig();
  UserChoice clear;
  clear.constant_values["name"] = V("alice");
  clear.constant_values["password"] = V("pw");
  clear.relation_choices["button"] = Tuple{V("clear")};
  auto out = stepper.Step(c, clear);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->next.page, "HP");
  // Back on HP with name/password already in kappa: condition (ii).
  auto err = stepper.StaticError(out->next);
  ASSERT_TRUE(err.has_value());
  auto out2 = stepper.Step(out->next, UserChoice{});
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2->to_error);
  EXPECT_EQ(out2->next.page, "ERR");
}

TEST_F(LoginRuntimeTest, ChoiceValidation) {
  Config c = stepper_->InitialConfig();
  // Missing constants.
  UserChoice empty;
  EXPECT_FALSE(stepper_->Step(c, empty).ok());
  // Tuple outside the options.
  UserChoice bad = LoginChoice("alice", "pw");
  bad.relation_choices["button"] = Tuple{V("nosuchbutton")};
  EXPECT_FALSE(stepper_->Step(c, bad).ok());
}

TEST_F(LoginRuntimeTest, ErrorPageLoopsForever) {
  Config c = stepper_->InitialConfig();
  c.page = "ERR";
  auto out = stepper_->Step(c, UserChoice{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->next.page, "ERR");
  EXPECT_EQ(out->next.state, c.state);  // carried unchanged
}

TEST_F(LoginRuntimeTest, ScriptedInterpreterRunsSession) {
  std::vector<UserChoice> script{LoginChoice("alice", "pw")};
  {
    UserChoice logout;
    logout.relation_choices["button"] = Tuple{V("logout")};
    script.push_back(logout);
  }
  ScriptedInputProvider provider(std::move(script));
  Interpreter interp(&service_, &db_);
  auto run = interp.Run(provider, 3);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->page_sequence,
            (std::vector<std::string>{"HP", "CP", "BYE"}));
  EXPECT_FALSE(run->reached_error);
}

TEST_F(LoginRuntimeTest, RandomRunsNeverCrash) {
  std::vector<Value> pool{V("alice"), V("pw"), V("zzz")};
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomInputProvider provider(seed, pool);
    Interpreter interp(&service_, &db_);
    auto run = interp.Run(provider, 15);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->trace.size(), 15u);
  }
}

TEST(EcommerceRuntimeTest, ShoppingSessionEndToEnd) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceDatabase();
  Interpreter interp(&*ws, &db);

  auto button = [](const char* label) {
    UserChoice c;
    c.relation_choices["button"] = Tuple{V(label)};
    return c;
  };
  std::vector<UserChoice> script;
  {
    UserChoice login = button("login");
    login.constant_values["name"] = V("alice");
    login.constant_values["password"] = V("pw");
    script.push_back(login);           // HP -> CP
  }
  script.push_back(button("laptop"));  // CP -> LSP
  {
    UserChoice search = button("search");
    search.relation_choices["laptopsearch"] =
        Tuple{V("4gb"), V("1tb"), V("13in")};
    script.push_back(search);          // LSP -> PIP
  }
  {
    UserChoice pick;
    pick.relation_choices["pickproduct"] = Tuple{V("p1"), V("100")};
    script.push_back(pick);            // PIP -> PP
  }
  script.push_back(button("buy"));     // PP -> UPP
  {
    UserChoice pay = button("submit");
    pay.relation_choices["payamount"] = Tuple{V("100")};
    script.push_back(pay);             // UPP -> COP
  }
  script.push_back(button("confirmorder"));  // COP -> VOP, conf+ship fire
  script.push_back(button("logout"));        // VOP -> GBP

  ScriptedInputProvider provider(std::move(script));
  auto run = interp.Run(provider, 9);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->page_sequence,
            (std::vector<std::string>{"HP", "CP", "LSP", "PIP", "PP", "UPP",
                                      "COP", "VOP", "GBP"}));
  EXPECT_FALSE(run->reached_error) << run->error_reason;
  // The confirm step produced both actions, visible in the next trace
  // element (actions triggered at step i land in A_{i+1}).
  const TraceStep& vop = run->trace[7];
  EXPECT_TRUE(vop.actions.FindRelation("conf")->Contains(
      Tuple{V("alice"), V("100")}));
  EXPECT_TRUE(vop.actions.FindRelation("ship")->Contains(
      Tuple{V("alice"), V("p1")}));
  // paid was recorded when submitting payment.
  EXPECT_TRUE(vop.state.FindRelation("paid")->Contains(
      Tuple{V("p1"), V("100")}));
}

TEST(EcommerceRuntimeTest, AdminCanShipPendingOrder) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok());
  Instance db = EcommerceDatabase();
  Interpreter interp(&*ws, &db);
  auto button = [](const char* label) {
    UserChoice c;
    c.relation_choices["button"] = Tuple{V(label)};
    return c;
  };
  std::vector<UserChoice> script;
  {
    UserChoice login = button("login");
    login.constant_values["name"] = V("Admin");
    login.constant_values["password"] = V("root");
    script.push_back(login);  // HP -> AP
  }
  script.push_back(button("pending"));  // AP -> POP
  ScriptedInputProvider provider(std::move(script));
  auto run = interp.Run(provider, 3);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->page_sequence,
            (std::vector<std::string>{"HP", "AP", "POP"}));
  EXPECT_TRUE(run->trace[1].state.FindRelation("is_admin")->AsBool());
}

}  // namespace
}  // namespace wsv
