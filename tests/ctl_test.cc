#include <gtest/gtest.h>

#include <random>

#include "ctl/ctl_check.h"
#include "ctl/ctl_sat.h"
#include "ctl/ctl_star_check.h"
#include "ctl/kripke.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/abstraction.h"
#include "verify/input_search_verifier.h"
#include "ws/builder.h"
#include "ws/classify.h"

namespace wsv {
namespace {

// A small fixed structure:
//   0{p} -> 1{q} -> 2{} -> 1;  0 -> 0 self loop.
Kripke SmallKripke() {
  Kripke k;
  int p = k.InternProp("p");
  int q = k.InternProp("q");
  int s0 = k.AddState({p});
  int s1 = k.AddState({q});
  int s2 = k.AddState({});
  k.AddEdge(s0, s1);
  k.AddEdge(s0, s0);
  k.AddEdge(s1, s2);
  k.AddEdge(s2, s1);
  k.SetInitial(s0);
  return k;
}

StatusOr<bool> Ctl(const Kripke& k, const std::string& text) {
  auto p = ParseTemporalProperty(text, nullptr);
  if (!p.ok()) return p.status();
  return CtlHolds(k, *p->formula);
}

StatusOr<bool> Star(const Kripke& k, const std::string& text) {
  auto p = ParseTemporalProperty(text, nullptr);
  if (!p.ok()) return p.status();
  return CtlStarHolds(k, *p->formula);
}

TEST(KripkeTest, BasicAccessors) {
  Kripke k = SmallKripke();
  EXPECT_EQ(k.size(), 3u);
  EXPECT_EQ(k.props().size(), 2u);
  EXPECT_EQ(k.InitialStates(), std::vector<int>{0});
  EXPECT_TRUE(k.CheckTotal().ok());
  Kripke partial;
  partial.AddState({});
  EXPECT_FALSE(partial.CheckTotal().ok());
}

TEST(CtlCheckTest, BasicOperators) {
  Kripke k = SmallKripke();
  EXPECT_TRUE(*Ctl(k, "p"));
  EXPECT_FALSE(*Ctl(k, "q"));
  EXPECT_TRUE(*Ctl(k, "E X(q)"));
  EXPECT_TRUE(*Ctl(k, "E X(p)"));   // via the self loop
  EXPECT_FALSE(*Ctl(k, "A X(q)"));  // self loop keeps p
  EXPECT_TRUE(*Ctl(k, "E F(q)"));
  EXPECT_FALSE(*Ctl(k, "A F(q)"));  // may stay on 0 forever
  EXPECT_TRUE(*Ctl(k, "E G(p)"));   // loop on 0
  EXPECT_FALSE(*Ctl(k, "A G(p)"));
  EXPECT_TRUE(*Ctl(k, "A G(p | q | (!p & !q))"));  // tautology
  EXPECT_TRUE(*Ctl(k, "E (p U q)"));
  EXPECT_FALSE(*Ctl(k, "A (p U q)"));
}

TEST(CtlCheckTest, NestedFormulas) {
  Kripke k = SmallKripke();
  // From everywhere one can reach the q/empty cycle.
  EXPECT_TRUE(*Ctl(k, "A G(E F(q))"));
  // But not back to p once left.
  EXPECT_FALSE(*Ctl(k, "A G(E F(p))"));
}

TEST(CtlCheckTest, RejectsNonCtl) {
  Kripke k = SmallKripke();
  EXPECT_FALSE(Ctl(k, "E (F(p) & G(q))").ok());
  EXPECT_FALSE(Ctl(k, "F(p)").ok());
}

TEST(CtlStarTest, HandlesCtlStarOnlyFormulas) {
  Kripke k = SmallKripke();
  // E(G p): stay on the p self-loop.
  EXPECT_TRUE(*Star(k, "E(G(p))"));
  // E(F q & G(!q)) is contradictory.
  EXPECT_FALSE(*Star(k, "E(F(q) & G(!q))"));
  // E(F q & F p): both eventually — p now, q later.
  EXPECT_TRUE(*Star(k, "E(F(q) & F(p))"));
  // A(F q | G p): every path either reaches q or keeps p forever.
  EXPECT_TRUE(*Star(k, "A(F(q) | G(p))"));
  // E(X X X q): 0 -> 1 -> 2 -> 1{q}.
  EXPECT_TRUE(*Star(k, "E(X(X(X(q))))"));
}

// Property sweep: on random Kripke structures, CTL* and CTL labelling
// agree on CTL formulas.
class CtlAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CtlAgreementTest, CtlStarAgreesWithCtlLabeling) {
  std::mt19937_64 rng(GetParam());
  const char* formulas[] = {
      "E F(p)",        "A F(p)",          "E G(p)",
      "A G(p)",        "E X(p & q)",      "A X(p | !q)",
      "E (p U q)",     "A (p U q)",       "E (p B q)",
      "A (p B q)",     "A G(E F(p))",     "E F(A G(!q))",
      "!(E F(p & q))", "A G(p -> E X(q))",
  };
  for (int iter = 0; iter < 10; ++iter) {
    // Random total Kripke structure with 2-6 states.
    Kripke k;
    int p = k.InternProp("p");
    int q = k.InternProp("q");
    int n = 2 + static_cast<int>(rng() % 5);
    for (int s = 0; s < n; ++s) {
      std::set<int> label;
      if (rng() % 2) label.insert(p);
      if (rng() % 2) label.insert(q);
      k.AddState(label);
    }
    for (int s = 0; s < n; ++s) {
      int degree = 1 + static_cast<int>(rng() % 2);
      for (int d = 0; d < degree; ++d) {
        k.AddEdge(s, static_cast<int>(rng() % n));
      }
    }
    k.SetInitial(static_cast<int>(rng() % n));
    for (const char* text : formulas) {
      auto prop = ParseTemporalProperty(text, nullptr);
      ASSERT_TRUE(prop.ok()) << text;
      auto by_ctl = CtlHolds(k, *prop->formula);
      auto by_star = CtlStarHolds(k, *prop->formula);
      ASSERT_TRUE(by_ctl.ok()) << text << ": " << by_ctl.status().ToString();
      ASSERT_TRUE(by_star.ok()) << text << ": "
                                << by_star.status().ToString();
      EXPECT_EQ(*by_ctl, *by_star) << text << "\n" << k.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtlAgreementTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- CTL satisfiability -------------------------------------------------------

StatusOr<bool> Sat(const std::string& text) {
  auto p = ParseTemporalProperty(text, nullptr);
  if (!p.ok()) return p.status();
  auto r = CtlSatisfiable(*p->formula);
  if (!r.ok()) return r.status();
  return r->satisfiable;
}

TEST(CtlSatTest, PropositionalCases) {
  EXPECT_TRUE(*Sat("p"));
  EXPECT_FALSE(*Sat("p & !p"));
  EXPECT_TRUE(*Sat("p | !p"));
  EXPECT_TRUE(*Sat("p & !q"));
}

TEST(CtlSatTest, TemporalCases) {
  EXPECT_TRUE(*Sat("E F(p)"));
  EXPECT_TRUE(*Sat("A G(p)"));
  EXPECT_FALSE(*Sat("A G(p) & E F(!p)"));
  EXPECT_FALSE(*Sat("A F(p) & A G(!p)"));
  EXPECT_TRUE(*Sat("A F(p) & !p"));
  EXPECT_TRUE(*Sat("E X(p) & E X(!p)"));
  EXPECT_FALSE(*Sat("E X(p) & A X(!p)"));
  EXPECT_TRUE(*Sat("E (p U q) & !q"));
  EXPECT_FALSE(*Sat("E (p U q) & A G(!q)"));
  EXPECT_TRUE(*Sat("E G(p) & E F(A G(!p))"));
  // An AU eventuality that can never be fulfilled.
  EXPECT_FALSE(*Sat("A (p U q) & A G(!q)"));
  EXPECT_TRUE(*Sat("A (p U q) & !q & p"));
}

TEST(CtlSatTest, ReportsTableauSizes) {
  auto p = ParseTemporalProperty("E F(p) & A G(q)", nullptr);
  ASSERT_TRUE(p.ok());
  auto r = CtlSatisfiable(*p->formula);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->tableau_states, 0u);
  EXPECT_LE(r->surviving_states, r->tableau_states);
}

// Soundness link: a CTL formula holding somewhere in a real structure is
// satisfiable.
TEST(CtlSatTest, ModelImpliesSatisfiable) {
  Kripke k = SmallKripke();
  for (const char* text :
       {"E F(q)", "A G(p -> E X(q))", "E G(p)", "p & E X(q)"}) {
    auto prop = ParseTemporalProperty(text, nullptr);
    ASSERT_TRUE(prop.ok());
    auto label = CtlLabel(k, *prop->formula);
    ASSERT_TRUE(label.ok());
    bool holds_somewhere = false;
    for (char b : *label) holds_somewhere |= (b != 0);
    if (!holds_somewhere) continue;
    auto sat = CtlSatisfiable(*prop->formula);
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(sat->satisfiable) << text;
  }
}

// --- Propositional abstraction and Kripke construction ----------------------

TEST(AbstractionTest, AbstractsEcommerceToPropositionalClass) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok());
  auto abs = AbstractToPropositional(*ws);
  // The e-commerce service uses Prev_I (PIP options), which cannot be
  // abstracted into the propositional class.
  EXPECT_FALSE(abs.ok());
}

TEST(AbstractionTest, AbstractsLoginService) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  auto abs = AbstractToPropositional(*ws);
  ASSERT_TRUE(abs.ok()) << abs.status().ToString();
  Status st = CheckPropositionalService(*abs);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(AbstractionTest, KripkeNavigationCheck) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  auto abs = AbstractToPropositional(*ws);
  ASSERT_TRUE(abs.ok()) << abs.status().ToString();
  // Database propositions: user is either empty or not.
  Instance db;
  ASSERT_TRUE(db.EnsureRelation("user", 0).ok());
  db.MutableRelation("user")->SetBool(true);
  KripkeBuildOptions options;
  options.graph.constant_pool = {Value::Intern("c0")};
  auto kripke = BuildPropositionalKripke(*abs, db, options);
  ASSERT_TRUE(kripke.ok()) << kripke.status().ToString();
  ASSERT_GT(kripke->size(), 0u);
  // Logging in leads to CP: at every initial state where the login
  // button was pressed, CP is reachable. (A bare E F(CP) fails at the
  // empty-submission initial state, where the session ends immediately.)
  auto ef_cp = ParseTemporalProperty("button(\"login\") -> E F(CP)",
                                     &abs->vocab());
  ASSERT_TRUE(ef_cp.ok());
  auto holds = CtlHolds(*kripke, *ef_cp->formula);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(*holds);
  // Every state can end the session.
  auto ag_bye = ParseTemporalProperty("A G(E F(BYE))", &abs->vocab());
  ASSERT_TRUE(ag_bye.ok());
  auto r_bye = CtlHolds(*kripke, *ag_bye->formula);
  ASSERT_TRUE(r_bye.ok());
  EXPECT_TRUE(*r_bye);
  // Once on the terminal BYE page, HP is never reachable again:
  auto back = ParseTemporalProperty("A G(!BYE | !(E F(HP)))",
                                    &abs->vocab());
  ASSERT_TRUE(back.ok());
  auto r2 = CtlHolds(*kripke, *back->formula);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
}

// --- Input-driven search (Theorem 4.9 / Example 4.8) ------------------------

TEST(SearchVerifierTest, CatalogSpecIsInClass) {
  auto ws = BuildInputDrivenSearchService(CatalogSearchSpec());
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Status st = CheckInputDrivenSearch(*ws);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(SearchVerifierTest, NonMembersRejected) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  EXPECT_FALSE(CheckInputDrivenSearch(*ws).ok());
}

TEST(SearchVerifierTest, Figure1Reachability) {
  auto ws = BuildInputDrivenSearchService(CatalogSearchSpec());
  ASSERT_TRUE(ws.ok());
  Instance db = CatalogSearchDatabase();
  KripkeBuildOptions options;
  auto check = [&](const std::string& text) -> bool {
    auto prop = ParseTemporalProperty(text, &ws->vocab());
    EXPECT_TRUE(prop.ok()) << prop.status().ToString();
    auto r = VerifyInputDrivenSearchOnDatabase(*ws, *prop, db, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->holds;
  };
  // If the user engages (picks the root), the in-stock desktop d1 is
  // reachable by descending the hierarchy. (Unguarded E F fails on the
  // initial state where the user idles and the search never starts.)
  EXPECT_TRUE(check("I(\"products\") -> E F(I(\"d1\"))"));
  EXPECT_FALSE(check("E F(I(\"d1\"))"));
  // Once descended, the user can never pick "products" again (no RI
  // edge loops back to the root).
  EXPECT_TRUE(check("A G(!I(\"products\") | A X(A G(!I(\"products\"))))"));
  // The used laptop l1 is also reachable after engaging.
  EXPECT_TRUE(check("I(\"products\") -> E F(I(\"l1\"))"));
  // No in-stock product named d2 exists.
  EXPECT_TRUE(check("A G(!I(\"d2\"))"));
}

}  // namespace
}  // namespace wsv
