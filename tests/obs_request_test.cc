// Tests for request-scoped telemetry (src/obs/request.h, events.h,
// watchdog.h): exact per-request counter attribution under concurrent
// verifications sharing the process, propagation of the request id
// across thread-pool tasks, snapshot diffing, memory gauges, the
// wide-event JSONL log's atomic publish, and the watchdog's final
// stall sweep.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "verify/parallel.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// Mirrors obs_test.cc: under the whole-tree -DWSV_OBS_DISABLED=ON
// configuration the library's instrumentation macros compile to
// no-ops, so assertions about library-recorded work skip; the direct
// registry/request API works in both modes.
#if defined(WSV_OBS_DISABLED)
constexpr bool kInstrumented = false;
#else
constexpr bool kInstrumented = true;
#endif

// --- RequestScope: attribution basics. ----------------------------------

TEST(RequestScope, SingleThreadDelta) {
  obs::ResetMetrics();
  obs::GetCounter("obs_req/outside").Add(5);
  obs::RequestScope scope("unit");
  EXPECT_EQ(obs::CurrentRequestId(), scope.id());
  obs::GetCounter("obs_req/inside").Add(7);
  obs::GetHistogram("obs_req/inside_hist").Record(11);

  obs::MetricsSnapshot delta = scope.Delta();
  EXPECT_EQ(delta.CounterValue("obs_req/inside"), 7u);
  EXPECT_EQ(delta.CounterValue("obs_req/outside"), 0u);
  auto it = delta.histograms.find("obs_req/inside_hist");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
  EXPECT_EQ(it->second.sum, 11u);

  // The global view still sees everything.
  obs::MetricsSnapshot global = obs::SnapshotMetrics();
  EXPECT_EQ(global.CounterValue("obs_req/outside"), 5u);
  EXPECT_EQ(global.CounterValue("obs_req/inside"), 7u);
}

TEST(RequestScope, CloseFreezesTheDelta) {
  obs::ResetMetrics();
  obs::RequestScope scope("freeze");
  obs::GetCounter("obs_req/frozen").Add(3);
  const obs::MetricsSnapshot& closed = scope.Close();
  EXPECT_EQ(closed.CounterValue("obs_req/frozen"), 3u);
  EXPECT_EQ(obs::CurrentRequestId(), obs::kNoRequest);

  // Writes after Close are not attributed; Delta stays frozen, and the
  // global total still counts the late write (nothing is lost).
  obs::GetCounter("obs_req/frozen").Add(100);
  EXPECT_EQ(scope.Delta().CounterValue("obs_req/frozen"), 3u);
  EXPECT_EQ(obs::SnapshotMetrics().CounterValue("obs_req/frozen"), 103u);
}

TEST(RequestScope, NestedScopesRestoreTheOuterId) {
  obs::ResetMetrics();
  obs::RequestScope outer("outer");
  obs::GetCounter("obs_req/nested").Add(1);
  {
    obs::RequestScope inner("inner");
    EXPECT_EQ(obs::CurrentRequestId(), inner.id());
    obs::GetCounter("obs_req/nested").Add(10);
    EXPECT_EQ(inner.Delta().CounterValue("obs_req/nested"), 10u);
  }
  EXPECT_EQ(obs::CurrentRequestId(), outer.id());
  obs::GetCounter("obs_req/nested").Add(100);
  // The outer request never sees the inner one's work.
  EXPECT_EQ(outer.Delta().CounterValue("obs_req/nested"), 101u);
}

TEST(RequestScope, PoolTasksInheritTheSubmittersRequest) {
  obs::ResetMetrics();
  ThreadPool pool(4);
  obs::RequestScope scope("pooled");
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([] { obs::GetCounter("obs_req/pooled_work").Add(3); });
  }
  pool.Wait();
  // Exact while the worker threads are still alive (their shards are
  // live, not retired).
  EXPECT_EQ(scope.Delta().CounterValue("obs_req/pooled_work"),
            uint64_t{3 * kTasks});
  EXPECT_EQ(scope.Close().CounterValue("obs_req/pooled_work"),
            uint64_t{3 * kTasks});
}

// --- The acceptance property: concurrent requests attribute exactly. ----

// Two in-process verification requests run concurrently, each fanning
// out over its own 4-worker pool. Every per-request delta must be
// exact: for every counter and histogram, the two deltas sum to the
// global registry delta over the same window — no lost, double-, or
// cross-attributed work.
TEST(RequestScope, InterleavedVerificationsSumToGlobal) {
  WebService service = std::move(BuildPaperClearLoopService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  auto prop = ParseTemporalProperty("G(!CP | logged_in)", &service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();

  obs::ResetMetrics();
  obs::MetricsSnapshot deltas[2];
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        obs::RequestScope scope("interleaved_" + std::to_string(t));
        ParallelLtlVerifier verifier(&service, options, 4);
        auto r = verifier.VerifyOnDatabase(*prop, db);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_TRUE(r->holds);
        deltas[t] = scope.Close();
      });
    }
    for (std::thread& th : threads) th.join();
  }
  obs::MetricsSnapshot global = obs::SnapshotMetrics();

  for (const auto& [name, total] : global.counters) {
    EXPECT_EQ(deltas[0].CounterValue(name) + deltas[1].CounterValue(name),
              total)
        << "counter " << name << " not exactly attributed";
  }
  for (const auto& [name, h] : global.histograms) {
    uint64_t count = 0;
    uint64_t sum = 0;
    for (const obs::MetricsSnapshot& d : deltas) {
      auto it = d.histograms.find(name);
      if (it == d.histograms.end()) continue;
      count += it->second.count;
      sum += it->second.sum;
    }
    EXPECT_EQ(count, h.count) << "histogram " << name;
    EXPECT_EQ(sum, h.sum) << "histogram " << name;
  }
  if (kInstrumented) {
    EXPECT_GT(global.CounterValue("ltl/valuations_checked"), 0u);
    EXPECT_GT(deltas[0].CounterValue("ltl/valuations_checked"), 0u);
    EXPECT_GT(deltas[1].CounterValue("ltl/valuations_checked"), 0u);
    EXPECT_GT(global.CounterValue("pool/tasks_run"), 0u);
  }
}

// --- Telemetry under cancellation (first-counterexample early exit). ----

TEST(RequestScope, CancellationTelemetry) {
  WebService service = std::move(BuildPaperClearLoopService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  // Violated: the login page *can* log in.
  auto prop = ParseTemporalProperty("G(!logged_in)", &service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();

  obs::ResetMetrics();
  std::string witness1;
  obs::MetricsSnapshot delta1;
  {
    obs::RequestScope scope("jobs1");
    ParallelLtlVerifier serial(&service, options, 1);
    auto r = serial.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    witness1 = r->counterexample->ToString();
    delta1 = scope.Close();
  }
  std::string witness4;
  obs::MetricsSnapshot delta4;
  {
    obs::RequestScope scope("jobs4");
    ParallelLtlVerifier parallel(&service, options, 4);
    auto r = parallel.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    witness4 = r->counterexample->ToString();
    delta4 = scope.Close();
  }

  // Deterministic early exit: same witness at any job count.
  EXPECT_EQ(witness1, witness4);

  // Spans are flushed on cancellation: the sweep span closed and landed
  // in the request delta before Close().
  if (kInstrumented) {
    auto it = delta4.histograms.find("span/verify/parallel_db_sweep");
    ASSERT_NE(it, delta4.histograms.end());
    EXPECT_GE(it->second.count, 1u);
    EXPECT_TRUE(obs::SnapshotOpenSpans().empty());

    // The terminal outcome derives from the request's own delta: the
    // parallel run signalled a cancellation after the winning
    // counterexample, the serial one completed its (single) sweep.
    EXPECT_GE(delta4.CounterValue("verify/cancellations_signalled"), 1u);
    EXPECT_EQ(obs::DeriveOutcome(Status::OK(), delta4),
              "cancelled_early_exit");
    EXPECT_EQ(delta1.CounterValue("verify/cancellations_signalled"), 0u);
    EXPECT_EQ(obs::DeriveOutcome(Status::OK(), delta1), "completed");
  }

  // The pre-sweep phases are deterministic regardless of how the
  // cancellation raced: property translation and database accounting
  // must match between job counts exactly.
  for (const char* name :
       {"automata/gba_states", "automata/buchi_states", "automata/fo_leaves",
        "verify/databases", "ltl/valuations_checked"}) {
    EXPECT_EQ(delta1.CounterValue(name), delta4.CounterValue(name)) << name;
  }
}

// --- Snapshot diffing. ---------------------------------------------------

TEST(Snapshots, DiffSubtractsCountersHistogramsAndGauges) {
  obs::ResetMetrics();
  obs::GetCounter("obs_req/diff_c").Add(5);
  obs::GetHistogram("obs_req/diff_h").Record(10);
  obs::GetGauge("obs_req/diff_g").Add(100);
  obs::MetricsSnapshot earlier = obs::SnapshotMetrics();

  obs::GetCounter("obs_req/diff_c").Add(7);
  obs::GetHistogram("obs_req/diff_h").Record(20);
  obs::GetHistogram("obs_req/diff_h").Record(30);
  obs::GetGauge("obs_req/diff_g").Sub(40);
  obs::MetricsSnapshot later = obs::SnapshotMetrics();

  obs::MetricsSnapshot diff = obs::DiffSnapshots(later, earlier);
  EXPECT_EQ(diff.CounterValue("obs_req/diff_c"), 7u);
  auto it = diff.histograms.find("obs_req/diff_h");
  ASSERT_NE(it, diff.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_EQ(it->second.sum, 50u);
  // Gauges are signed: the interval saw a net decrease.
  EXPECT_EQ(diff.GaugeValue("obs_req/diff_g"), -40);
  obs::GetGauge("obs_req/diff_g").Sub(60);  // restore balance
}

// --- Gauges: occupancy, not work. ----------------------------------------

TEST(Gauges, TrackLiveValueAndSurviveReset) {
  obs::Gauge& g = obs::GetGauge("obs_req/gauge");
  g.Add(100);
  g.Sub(40);
  EXPECT_EQ(g.Value(), 60);
  EXPECT_EQ(obs::SnapshotMetrics().GaugeValue("obs_req/gauge"), 60);
  // Reset zeroes work counters but must not forge deallocations: the
  // bytes are still live.
  obs::ResetMetrics();
  EXPECT_EQ(obs::SnapshotMetrics().GaugeValue("obs_req/gauge"), 60);
  g.Sub(60);
  EXPECT_EQ(g.Value(), 0);
}

TEST(Gauges, RequestDeltaExcludesGauges) {
  obs::ResetMetrics();
  obs::RequestScope scope("gaugeless");
  obs::GetGauge("obs_req/gauge2").Add(10);
  // Occupancy is process-global (whose allocation is live is not a
  // per-request question); deltas carry only attributable work.
  EXPECT_TRUE(scope.Delta().gauges.empty());
  obs::GetGauge("obs_req/gauge2").Sub(10);
}

TEST(Gauges, LibraryMemoryGaugesAreLive) {
  if (!kInstrumented) GTEST_SKIP() << "instrumentation compiled out";
  // Interning a fresh value must grow the interner gauges.
  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  V("obs_req_fresh_value_for_gauge_test");
  obs::MetricsSnapshot after = obs::SnapshotMetrics();
  EXPECT_GT(after.GaugeValue("mem/value_interner_entries"),
            before.GaugeValue("mem/value_interner_entries"));
  EXPECT_GT(after.GaugeValue("mem/value_interner_bytes"),
            before.GaugeValue("mem/value_interner_bytes"));
}

// --- Wide-event log: serialization and atomic publish. -------------------

TEST(EventLog, SerializeWideEvent) {
  obs::WideEvent ev;
  ev.event = "phase";
  ev.phase = "parse";
  ev.request = 7;
  ev.label = "specs/login.wsv";
  ev.ts_ns = 123;
  ev.duration_ns = 456;
  ev.text.emplace_back("spec_hash", "abc");
  ev.nums.emplace_back("errors", 0);
  ev.counters.emplace_back("verify/databases", 2);
  EXPECT_EQ(obs::SerializeWideEvent(ev),
            "{\"event\":\"phase\",\"ts_ns\":123,\"request\":7,"
            "\"label\":\"specs/login.wsv\",\"phase\":\"parse\","
            "\"duration_ns\":456,\"spec_hash\":\"abc\",\"errors\":0,"
            "\"counters\":{\"verify/databases\":2}}");
}

TEST(EventLog, ContentHashIsStableAndSensitive) {
  EXPECT_EQ(obs::ContentHashHex("abc"), obs::ContentHashHex("abc"));
  EXPECT_NE(obs::ContentHashHex("abc"), obs::ContentHashHex("abd"));
  EXPECT_EQ(obs::ContentHashHex("abc").size(), 16u);
}

TEST(EventLog, PublishesByAtomicRename) {
  const std::string path =
      ::testing::TempDir() + "obs_request_test_events.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::EventLog::Get().Open(path).ok());
  ASSERT_TRUE(obs::EventLog::Get().enabled());

  obs::WideEvent ev;
  ev.phase = "parse";
  ev.request = 1;
  obs::EventLog::Get().Emit(ev);
  ev.event = "request";
  obs::EventLog::Get().Emit(ev);

  // While streaming, only the temp sibling exists.
  EXPECT_FALSE(std::ifstream(path).good());
  ASSERT_TRUE(obs::EventLog::Get().Close().ok());
  EXPECT_FALSE(obs::EventLog::Get().enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  uint64_t last_ts = 0;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // ts_ns is the first field after "event"; monotone file-wide.
    auto pos = line.find("\"ts_ns\":");
    ASSERT_NE(pos, std::string::npos);
    uint64_t ts = std::strtoull(line.c_str() + pos + 8, nullptr, 10);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(EventLog, DiscardLeavesNoFile) {
  const std::string path =
      ::testing::TempDir() + "obs_request_test_discard.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::EventLog::Get().Open(path).ok());
  obs::WideEvent ev;
  obs::EventLog::Get().Emit(ev);
  obs::EventLog::Get().Discard();
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(obs::EventLog::Get().enabled());
}

TEST(FileUtil, WriteFileAtomicRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_request_test_atomic";
  ASSERT_TRUE(WriteFileAtomic(path, "first\n").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second\n").ok());  // overwrite
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "second\n");
  std::remove(path.c_str());
}

// --- Watchdog. -----------------------------------------------------------

TEST(Watchdog, FinalSweepFlagsTheOpenRequest) {
  obs::ResetMetrics();
  obs::RequestScope scope("stalled");
  obs::WatchdogOptions options;
  // Deadline 0 with a sample interval far beyond the test's lifetime:
  // only Stop()'s deterministic final sweep reports.
  options.stall_deadline_ns = 0;
  options.sample_interval_ms = 60 * 1000;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  options.stream = sink;
  obs::Watchdog watchdog(options);
  EXPECT_EQ(watchdog.stall_events(), 0u);
  watchdog.Stop();
  EXPECT_GE(watchdog.stall_events(), 1u);
  std::fclose(sink);
}

TEST(Watchdog, NoDeadlineNoStalls) {
  obs::ResetMetrics();
  obs::RequestScope scope("healthy");
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::WatchdogOptions options;
  options.stream = sink;
  obs::Watchdog watchdog(options);
  watchdog.Stop();
  EXPECT_EQ(watchdog.stall_events(), 0u);
  std::fclose(sink);
}

TEST(Watchdog, OpenSpansAreVisibleToTheSampler) {
  if (!kInstrumented) GTEST_SKIP() << "instrumentation compiled out";
  EXPECT_TRUE(obs::SnapshotOpenSpans().empty());
  {
    WSV_SPAN("obs_req/outer_span");
    WSV_SPAN("obs_req/inner_span");
    std::vector<obs::OpenSpan> open = obs::SnapshotOpenSpans();
    ASSERT_EQ(open.size(), 2u);
    EXPECT_EQ(open[0].name, "obs_req/outer_span");
    EXPECT_EQ(open[1].name, "obs_req/inner_span");
  }
  EXPECT_TRUE(obs::SnapshotOpenSpans().empty());
}

}  // namespace
}  // namespace wsv
