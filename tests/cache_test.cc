// Cross-request verification cache (`ctest -L cache`): fingerprint
// invariance, store-format negatives (corruption, version bumps),
// hit/warm/invalidated classification with counter enforcement,
// cold-vs-cached verdict identity (the differential the cache's whole
// design leans on), FO-leaf column persistence, the bytecode
// fingerprint collision guard, and the replay job parser.

#include <gtest/gtest.h>

#include <cstdlib>
#include <ctime>
#include <string>
#include <unistd.h>
#include <vector>

#include "cache/invalidate.h"
#include "cache/replay.h"
#include "cache/store.h"
#include "cache/verify_cache.h"
#include "common/fingerprint.h"
#include "common/file_util.h"
#include "fo/bytecode/cache.h"
#include "ltl/ltl_parser.h"
#include "obs/metrics.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "ws/data_parser.h"
#include "ws/spec_parser.h"

namespace wsv {
namespace cache {
namespace {

const char kSpec[] = R"(service Login;

database user(uname, upass);
state error(msg);
state logged_in;
input name const;
input password const;
input button(label);

page HP {
  input name, password;
  options button(x) :- x = "login" | x = "quit";
  state +error("failed login") :- !user(name, password) & button("login");
  state +logged_in :- user(name, password) & button("login");
  target CP :- user(name, password) & button("login");
  target MP :- !user(name, password) & button("login");
  target BYE :- button("quit") | !(exists x . button(x) & true);
}

page CP {
  options button(x) :- x = "logout";
  target BYE :- button("logout");
}

page MP {
}

page BYE {
}

home HP;
error ERR;
)";

// kSpec with different whitespace and comments: same structure, and —
// the point of content fingerprinting — the same fingerprint.
const char kSpecReformatted[] = R"(# reformatted; fingerprint must agree
service Login;
database user(uname, upass);
state error(msg);
state logged_in;
input name const;
input password const;
input button(label);
page HP {
  input name, password;


  options button(x) :- x = "login" | x = "quit";
  state +error("failed login") :- !user(name, password) & button("login");
  state +logged_in :- user(name, password) & button("login");
  target CP :- user(name, password) & button("login");   # comment
  target MP :- !user(name, password) & button("login");
  target BYE :- button("quit") | !(exists x . button(x) & true);
}
page CP {
  options button(x) :- x = "logout";
  target BYE :- button("logout");
}
page MP {
}
page BYE {
}
home HP;
error ERR;
)";

// One-rule edit: the failed-login error rule gains a vacuous `& true`.
// Same literal set, same relations read — the diff dirties only
// `error`, so properties over other relations survive the edit.
std::string EditedSpec() {
  std::string text = kSpec;
  const std::string from =
      "state +error(\"failed login\") :- !user(name, password) & "
      "button(\"login\");";
  const std::string to =
      "state +error(\"failed login\") :- !user(name, password) & "
      "button(\"login\") & true;";
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, from.size(), to);
  return text;
}

// Literal-set edit: a third button option. New constant literal in a
// rule body — the invalidation algebra must classify this as global.
std::string LiteralEditedSpec() {
  std::string text = kSpec;
  const std::string from = "x = \"login\" | x = \"quit\"";
  const std::string to = "x = \"login\" | x = \"quit\" | x = \"retry\"";
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, from.size(), to);
  return text;
}

WebService MustParse(const std::string& text) {
  auto service = ParseServiceSpec(text);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

TemporalProperty MustProp(const WebService& service, const std::string& p) {
  auto prop = ParseTemporalProperty(p, &service.vocab());
  EXPECT_TRUE(prop.ok()) << p << ": " << prop.status().ToString();
  return std::move(prop).value();
}

Instance MustDb(const WebService& service, const std::string& text) {
  auto db = ParseDataFile(text, &service.vocab());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// A directory under the test temp root that no previous run populated
// (stale entries would turn first-lookup misses into disk hits).
std::string FreshCacheDir(const std::string& name) {
  return ::testing::TempDir() + "cache_test_" + name + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(static_cast<unsigned long>(::time(nullptr)));
}

uint64_t CounterDelta(const obs::MetricsSnapshot& before,
                      const obs::MetricsSnapshot& after,
                      std::string_view name) {
  return after.CounterValue(name) - before.CounterValue(name);
}

// ---------------------------------------------------------------------
// Fingerprints

TEST(FingerprintTest, ReformattingKeepsServiceFingerprint) {
  WebService a = MustParse(kSpec);
  WebService b = MustParse(kSpecReformatted);
  EXPECT_EQ(FingerprintService(a), FingerprintService(b));
}

TEST(FingerprintTest, StructuralEditChangesServiceFingerprint) {
  WebService a = MustParse(kSpec);
  WebService b = MustParse(EditedSpec());
  EXPECT_NE(FingerprintService(a), FingerprintService(b));
}

TEST(FingerprintTest, PropertyFingerprintIgnoresSourceSpans) {
  WebService service = MustParse(kSpec);
  TemporalProperty a = MustProp(service, "G(!CP | logged_in)");
  TemporalProperty b = MustProp(service, "G( !CP  |  logged_in )");
  TemporalProperty c = MustProp(service, "F(CP)");
  EXPECT_EQ(FingerprintProperty(a), FingerprintProperty(b));
  EXPECT_NE(FingerprintProperty(a), FingerprintProperty(c));
}

TEST(FingerprintTest, InstanceFingerprintIsOrderIndependent) {
  WebService service = MustParse(kSpec);
  Instance a = MustDb(service, "user(alice, pw).\nuser(bob, hunter2).");
  Instance b = MustDb(service, "user(bob, hunter2).\nuser(alice, pw).");
  Instance c = MustDb(service, "user(alice, pw).");
  EXPECT_EQ(FingerprintInstance(a), FingerprintInstance(b));
  EXPECT_NE(FingerprintInstance(a), FingerprintInstance(c));
}

TEST(FingerprintTest, HexRoundTrip) {
  Fingerprint fp{0x0123456789abcdefull, 0xfedcba9876543210ull};
  Fingerprint back;
  ASSERT_TRUE(Fingerprint::FromHex(fp.ToHex(), &back));
  EXPECT_EQ(fp, back);
  EXPECT_FALSE(Fingerprint::FromHex("not hex", &back));
  EXPECT_FALSE(Fingerprint::FromHex(fp.ToHex().substr(1), &back));
}

// ---------------------------------------------------------------------
// Store format

std::string SamplePayload() {
  ByteWriter w;
  w.U8(1);
  w.U64(42);
  w.Str("witness text");
  w.U64Vec({1, 2, 3});
  return w.data();
}

TEST(StoreTest, RecordRoundTrip) {
  const std::string payload = SamplePayload();
  const std::string file = EncodeRecord(kKindVerdict, payload);
  std::string out;
  ASSERT_TRUE(DecodeRecord(file, kKindVerdict, &out));
  EXPECT_EQ(out, payload);

  ByteReader r(out);
  uint8_t u8 = 0;
  uint64_t u64 = 0;
  std::string s;
  std::vector<uint64_t> v;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.Str(&s));
  ASSERT_TRUE(r.U64Vec(&v));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 1);
  EXPECT_EQ(u64, 42u);
  EXPECT_EQ(s, "witness text");
  EXPECT_EQ(v, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(StoreTest, CorruptionIsAMiss) {
  const std::string payload = SamplePayload();
  std::string file = EncodeRecord(kKindVerdict, payload);
  std::string out;
  // Flip one payload byte: checksum mismatch.
  std::string flipped = file;
  flipped[flipped.size() - 3] ^= 0x20;
  EXPECT_FALSE(DecodeRecord(flipped, kKindVerdict, &out));
  // Truncate: size mismatch.
  EXPECT_FALSE(
      DecodeRecord(std::string_view(file).substr(0, file.size() - 1),
                   kKindVerdict, &out));
  // Mangle the magic.
  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeRecord(bad_magic, kKindVerdict, &out));
}

TEST(StoreTest, VersionBumpIsAMiss) {
  const std::string file =
      EncodeRecord(kKindVerdict, SamplePayload(), kStoreVersion + 1);
  std::string out;
  EXPECT_FALSE(DecodeRecord(file, kKindVerdict, &out));
}

TEST(StoreTest, WrongKindIsAMiss) {
  const std::string file = EncodeRecord(kKindVerdict, SamplePayload());
  std::string out;
  EXPECT_FALSE(DecodeRecord(file, kKindSpec, &out));
}

TEST(StoreTest, FileRoundTripAndAbsence) {
  const std::string dir = FreshCacheDir("store");
  ASSERT_TRUE(EnsureDir(dir));
  const std::string path = dir + "/rec.bin";
  std::string out;
  bool existed = true;
  EXPECT_FALSE(ReadRecordFile(path, kKindSpec, &out, &existed));
  EXPECT_FALSE(existed);
  ASSERT_TRUE(WriteRecordFile(path, kKindSpec, "spec text"));
  ASSERT_TRUE(ReadRecordFile(path, kKindSpec, &out, &existed));
  EXPECT_TRUE(existed);
  EXPECT_EQ(out, "spec text");
}

TEST(StoreTest, TruncatedReaderFailsClosed) {
  ByteReader r(std::string_view("\x02", 1));
  std::string s;
  EXPECT_FALSE(r.Str(&s));  // length prefix itself is truncated
  std::vector<uint64_t> v;
  ByteReader r2(std::string_view("\xff\xff\xff\xff\xff\xff\xff\xff", 8));
  EXPECT_FALSE(r2.U64Vec(&v));  // claims 2^64-1 elements
}

// ---------------------------------------------------------------------
// Invalidation algebra

TEST(InvalidateTest, RuleEditDirtiesOnlyItsRelation) {
  WebService older = MustParse(kSpec);
  WebService newer = MustParse(EditedSpec());
  SpecDelta delta = DiffServices(older, newer);
  EXPECT_FALSE(delta.global) << delta.global_reason;
  EXPECT_EQ(delta.dirty_relations.count("error"), 1u);
  EXPECT_EQ(delta.dirty_relations.count("logged_in"), 0u);
  ASSERT_FALSE(delta.changed_rules.empty());

  TemporalProperty unaffected = MustProp(newer, "G(!CP | logged_in)");
  TemporalProperty affected =
      MustProp(newer, "G(!BYE | !error(\"failed login\"))");
  EXPECT_FALSE(PropertyAffected(delta, unaffected, newer));
  EXPECT_TRUE(PropertyAffected(delta, affected, newer));
}

TEST(InvalidateTest, IdenticalServicesDiffEmpty) {
  WebService a = MustParse(kSpec);
  WebService b = MustParse(kSpecReformatted);
  SpecDelta delta = DiffServices(a, b);
  EXPECT_FALSE(delta.global);
  EXPECT_TRUE(delta.Empty());
}

TEST(InvalidateTest, LiteralSetChangeIsGlobal) {
  WebService older = MustParse(kSpec);
  WebService newer = MustParse(LiteralEditedSpec());
  SpecDelta delta = DiffServices(older, newer);
  EXPECT_TRUE(delta.global);
  // Global deltas affect every property, whatever its leaves read.
  TemporalProperty prop = MustProp(newer, "G(!CP | logged_in)");
  EXPECT_TRUE(PropertyAffected(delta, prop, newer));
}

// ---------------------------------------------------------------------
// VerifyCache end to end

struct Request {
  WebService service;
  TemporalProperty property;
  Instance db;
  LtlVerifyOptions options;
  RequestKey key;
};

Request MakeRequest(const std::string& spec_text,
                    const std::string& prop_text) {
  Request r{MustParse(spec_text), {}, {}, {}, {}};
  r.property = MustProp(r.service, prop_text);
  r.db = MustDb(r.service, "user(alice, pw).");
  r.key = MakeRequestKey(r.service, r.property, &r.db, r.options,
                         /*jobs=*/1);
  return r;
}

CachedVerdict ColdVerdict(const Request& r) {
  auto result =
      LtlVerifier(&r.service, r.options).VerifyOnDatabase(r.property, r.db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  CachedVerdict v;
  v.holds = result->holds;
  if (!result->holds) v.witness_text = result->counterexample->ToString();
  v.databases_checked = result->databases_checked;
  v.total_graph_nodes = result->total_graph_nodes;
  v.total_product_states = result->total_product_states;
  v.complete_within_bounds = result->complete_within_bounds;
  return v;
}

TEST(VerifyCacheTest, MissInsertHitThenDiskHit) {
  const std::string dir = FreshCacheDir("disk");
  Request r = MakeRequest(kSpec, "G(!CP | logged_in)");
  CachedVerdict cold = ColdVerdict(r);

  {
    VerifyCache::Config cfg;
    cfg.dir = dir;
    VerifyCache cache(std::move(cfg));
    cache.RegisterSpec(r.key.spec, kSpec);
    auto miss = cache.Lookup(r.key, "login", r.service, r.property);
    EXPECT_EQ(miss.outcome, Outcome::kMiss);
    cache.Insert(r.key, cold);
    auto hit = cache.Lookup(r.key, "login", r.service, r.property);
    ASSERT_EQ(hit.outcome, Outcome::kHit);
    EXPECT_EQ(hit.verdict.holds, cold.holds);
    EXPECT_EQ(hit.verdict.witness_text, cold.witness_text);
    EXPECT_EQ(hit.verdict.total_product_states, cold.total_product_states);
  }

  // A second instance over the same directory: served from disk, and —
  // the reformatted spec — through the same content fingerprint.
  Request r2 = MakeRequest(kSpecReformatted, "G(!CP | logged_in)");
  ASSERT_EQ(r2.key.combined, r.key.combined);
  VerifyCache::Config cfg;
  cfg.dir = dir;
  VerifyCache cache2(std::move(cfg));
  cache2.RegisterSpec(r2.key.spec, kSpecReformatted);
  auto hit = cache2.Lookup(r2.key, "login", r2.service, r2.property);
  ASSERT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.verdict.holds, cold.holds);
  EXPECT_EQ(hit.verdict.witness_text, cold.witness_text);
  EXPECT_EQ(hit.verdict.databases_checked, cold.databases_checked);
  EXPECT_EQ(hit.verdict.total_graph_nodes, cold.total_graph_nodes);
  EXPECT_EQ(hit.verdict.total_product_states, cold.total_product_states);
  EXPECT_EQ(hit.verdict.complete_within_bounds,
            cold.complete_within_bounds);
}

TEST(VerifyCacheTest, CorruptedVerdictFileIsAMiss) {
  const std::string dir = FreshCacheDir("corrupt");
  Request r = MakeRequest(kSpec, "G(!CP | logged_in)");
  CachedVerdict cold = ColdVerdict(r);
  {
    VerifyCache::Config cfg;
    cfg.dir = dir;
    VerifyCache cache(std::move(cfg));
    cache.RegisterSpec(r.key.spec, kSpec);
    cache.Insert(r.key, cold);
  }
  const std::string path =
      dir + "/verdicts/" + r.key.combined.ToHex() + ".bin";
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes));
  bytes[bytes.size() / 2] ^= 0x41;
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());

  VerifyCache::Config cfg;
  cfg.dir = dir;
  VerifyCache cache(std::move(cfg));
  cache.RegisterSpec(r.key.spec, kSpec);
  auto looked = cache.Lookup(r.key, "login", r.service, r.property);
  EXPECT_EQ(looked.outcome, Outcome::kMiss);
}

TEST(VerifyCacheTest, DisableEnvVarBypassesEverything) {
  Request r = MakeRequest(kSpec, "G(!CP | logged_in)");
  VerifyCache cache(VerifyCache::Config{});
  cache.RegisterSpec(r.key.spec, kSpec);
  cache.Insert(r.key, ColdVerdict(r));
  ASSERT_EQ(cache.Lookup(r.key, "login", r.service, r.property).outcome,
            Outcome::kHit);

  ::setenv("WSV_DISABLE_VERIFY_CACHE", "1", 1);
  EXPECT_FALSE(VerifyCache::Enabled());
  EXPECT_EQ(cache.Lookup(r.key, "login", r.service, r.property).outcome,
            Outcome::kMiss);
  cache.Insert(r.key, ColdVerdict(r));  // no-op while disabled
  ::unsetenv("WSV_DISABLE_VERIFY_CACHE");
  EXPECT_TRUE(VerifyCache::Enabled());
  EXPECT_EQ(cache.Lookup(r.key, "login", r.service, r.property).outcome,
            Outcome::kHit);
}

// The differential the design rests on: for a corpus of properties, the
// cached verdict must be field-for-field identical to a second cold run
// — including the witness text on VIOLATED verdicts.
TEST(VerifyCacheTest, CachedVerdictsMatchColdRunsBitForBit) {
  const std::vector<std::string> corpus = {
      "G(!CP | logged_in)",
      "F(CP)",
      "G(!MP | !logged_in)",
      "G(!BYE | !error(\"failed login\"))",
      "F(BYE)",
  };
  VerifyCache cache(VerifyCache::Config{});
  for (const std::string& prop_text : corpus) {
    Request r = MakeRequest(kSpec, prop_text);
    cache.RegisterSpec(r.key.spec, kSpec);
    ASSERT_EQ(cache.Lookup(r.key, "login", r.service, r.property).outcome,
              Outcome::kMiss)
        << prop_text;
    cache.Insert(r.key, ColdVerdict(r));

    // Re-run cold (fresh verifier, fresh parse) and compare.
    Request again = MakeRequest(kSpecReformatted, prop_text);
    ASSERT_EQ(again.key.combined, r.key.combined) << prop_text;
    CachedVerdict cold = ColdVerdict(again);
    auto hit = cache.Lookup(again.key, "login", again.service,
                            again.property);
    ASSERT_EQ(hit.outcome, Outcome::kHit) << prop_text;
    EXPECT_EQ(hit.verdict.holds, cold.holds) << prop_text;
    EXPECT_EQ(hit.verdict.witness_text, cold.witness_text) << prop_text;
    EXPECT_EQ(hit.verdict.databases_checked, cold.databases_checked)
        << prop_text;
    EXPECT_EQ(hit.verdict.total_graph_nodes, cold.total_graph_nodes)
        << prop_text;
    EXPECT_EQ(hit.verdict.total_product_states, cold.total_product_states)
        << prop_text;
  }
}

TEST(VerifyCacheTest, EditMigratesUnaffectedAndEvictsAffected) {
  VerifyCache cache(VerifyCache::Config{});
  Request un0 = MakeRequest(kSpec, "G(!CP | logged_in)");
  Request aff0 = MakeRequest(kSpec, "G(!BYE | !error(\"failed login\"))");
  cache.RegisterSpec(un0.key.spec, kSpec);
  cache.Lookup(un0.key, "login", un0.service, un0.property);
  cache.Insert(un0.key, ColdVerdict(un0));
  cache.Lookup(aff0.key, "login", aff0.service, aff0.property);
  cache.Insert(aff0.key, ColdVerdict(aff0));

  const std::string edited = EditedSpec();
  Request un1 = MakeRequest(edited, "G(!CP | logged_in)");
  Request aff1 = MakeRequest(edited, "G(!BYE | !error(\"failed login\"))");
  cache.RegisterSpec(un1.key.spec, edited);

  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  auto warm = cache.Lookup(un1.key, "login", un1.service, un1.property);
  ASSERT_EQ(warm.outcome, Outcome::kWarm);
  EXPECT_TRUE(warm.verdict.migrated);
  EXPECT_TRUE(warm.verdict.holds);
  EXPECT_FALSE(warm.delta.global) << warm.delta.global_reason;

  auto inval = cache.Lookup(aff1.key, "login", aff1.service, aff1.property);
  EXPECT_EQ(inval.outcome, Outcome::kInvalidated);
  obs::MetricsSnapshot after = obs::SnapshotMetrics();
#ifndef WSV_OBS_DISABLED
  EXPECT_EQ(CounterDelta(before, after, "cache/warm_hits"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "cache/invalidated"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "cache/hits"), 0u);
#endif

  // The migrated entry now lives under the new fingerprint: an exact
  // hit, no further chain walk.
  EXPECT_EQ(cache.Lookup(un1.key, "login", un1.service, un1.property)
                .outcome,
            Outcome::kHit);
}

// The payoff of the dependence-graph cone query over the old
// leaf-mentions-dirty check: a *quantified* property survives an edit
// outside its cone. `exists u . user(u, password)` is syntactically
// domain-independent, so dirtying `error` (which the property's
// backward cone never reaches) migrates the verdict warm — the old
// algebra evicted every quantified property on any edit.
TEST(VerifyCacheTest, OutsideConeEditMigratesQuantifiedProperty) {
  const std::string prop_text =
      "G(!CP | (exists u . user(u, password)))";
  // The existential quantifies over a database relation, not an input
  // atom — allowed only outside the input-bounded fragment.
  auto unbounded = [](Request r) {
    r.options.require_input_bounded = false;
    r.key = MakeRequestKey(r.service, r.property, &r.db, r.options,
                           /*jobs=*/1);
    return r;
  };
  VerifyCache cache(VerifyCache::Config{});
  Request r0 = unbounded(MakeRequest(kSpec, prop_text));
  cache.RegisterSpec(r0.key.spec, kSpec);
  cache.Lookup(r0.key, "login", r0.service, r0.property);
  CachedVerdict cold = ColdVerdict(r0);
  ASSERT_TRUE(cold.holds);
  cache.Insert(r0.key, cold);

  const std::string edited = EditedSpec();  // dirties only `error`
  Request r1 = unbounded(MakeRequest(edited, prop_text));
  cache.RegisterSpec(r1.key.spec, edited);

  SpecDelta delta = DiffServices(r0.service, r1.service);
  ASSERT_FALSE(delta.global) << delta.global_reason;
  ASSERT_EQ(delta.dirty_relations.count("error"), 1u);
  EXPECT_FALSE(PropertyAffected(delta, r1.property, r1.service));

  auto warm = cache.Lookup(r1.key, "login", r1.service, r1.property);
  ASSERT_EQ(warm.outcome, Outcome::kWarm);
  EXPECT_TRUE(warm.verdict.migrated);
  // And the migrated verdict still agrees with a cold run on the new
  // spec — the cone query must not have let a real change through.
  CachedVerdict recheck = ColdVerdict(r1);
  EXPECT_EQ(warm.verdict.holds, recheck.holds);
  EXPECT_EQ(warm.verdict.databases_checked, recheck.databases_checked);
}

TEST(VerifyCacheTest, GlobalEditEvictsEverything) {
  VerifyCache cache(VerifyCache::Config{});
  Request r0 = MakeRequest(kSpec, "G(!CP | logged_in)");
  cache.RegisterSpec(r0.key.spec, kSpec);
  cache.Lookup(r0.key, "login", r0.service, r0.property);
  cache.Insert(r0.key, ColdVerdict(r0));

  const std::string edited = LiteralEditedSpec();
  Request r1 = MakeRequest(edited, "G(!CP | logged_in)");
  cache.RegisterSpec(r1.key.spec, edited);
  auto looked = cache.Lookup(r1.key, "login", r1.service, r1.property);
  EXPECT_EQ(looked.outcome, Outcome::kInvalidated);
  EXPECT_TRUE(looked.delta.global);
}

TEST(VerifyCacheTest, LintTextPersistsPerSpec) {
  const std::string dir = FreshCacheDir("lint");
  Fingerprint spec_fp;
  {
    WebService service = MustParse(kSpec);
    spec_fp = FingerprintService(service);
    VerifyCache::Config cfg;
    cfg.dir = dir;
    VerifyCache cache(std::move(cfg));
    cache.RegisterSpec(spec_fp, kSpec);
    std::string lint;
    EXPECT_FALSE(cache.LookupLint(spec_fp, &lint));
    cache.InsertLint(spec_fp, "rendered lint\n");
    ASSERT_TRUE(cache.LookupLint(spec_fp, &lint));
    EXPECT_EQ(lint, "rendered lint\n");
  }
  VerifyCache::Config cfg;
  cfg.dir = dir;
  VerifyCache cache(std::move(cfg));
  std::string lint;
  ASSERT_TRUE(cache.LookupLint(spec_fp, &lint));
  EXPECT_EQ(lint, "rendered lint\n");
}

#ifndef WSV_OBS_DISABLED
// FO-leaf truth columns persist on disk: a fresh process (modeled by a
// fresh cache instance and verifier) loads the published columns
// instead of re-evaluating every leaf.
TEST(VerifyCacheTest, LeafColumnsPersistAcrossInstances) {
  const std::string dir = FreshCacheDir("leafcols");
  Request r = MakeRequest(kSpec, "G(!CP | logged_in)");
  r.options.force_eager = true;

  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  CachedVerdict first;
  {
    VerifyCache::Config cfg;
    cfg.dir = dir;
    VerifyCache cache(std::move(cfg));
    r.options.leaf_store_context = VerifyCache::LeafContext(
        r.key, r.service, r.property, r.db, r.options, /*on_the_fly=*/false);
    r.options.leaf_store = cache.leaf_store();
    first = ColdVerdict(r);
  }
  obs::MetricsSnapshot mid = obs::SnapshotMetrics();
  EXPECT_GT(CounterDelta(before, mid, "cache/leaf_cols_published"), 0u);

  {
    VerifyCache::Config cfg;
    cfg.dir = dir;
    VerifyCache cache(std::move(cfg));
    r.options.leaf_store = cache.leaf_store();
    CachedVerdict second = ColdVerdict(r);
    EXPECT_EQ(second.holds, first.holds);
    EXPECT_EQ(second.witness_text, first.witness_text);
    EXPECT_EQ(second.total_product_states, first.total_product_states);
  }
  obs::MetricsSnapshot after = obs::SnapshotMetrics();
  EXPECT_GT(CounterDelta(mid, after, "cache/leaf_cols_loaded"), 0u);
}
#endif

// ---------------------------------------------------------------------
// Bytecode program cache: fingerprint re-key and the collision guard

struct ScopedForcedCollisions {
  ScopedForcedCollisions() { fobc::ForceFingerprintCollisionsForTest(true); }
  ~ScopedForcedCollisions() {
    fobc::ForceFingerprintCollisionsForTest(false);
  }
};

TEST(BytecodeFingerprintTest, CrossSpecProgramReuse) {
  // Two parses of the same text: distinct Formula objects, identical
  // structure. The second verification must alias compiled programs via
  // the fingerprint index instead of recompiling.
  Request a = MakeRequest(kSpec, "G(!CP | logged_in)");
  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  CachedVerdict va = ColdVerdict(a);
  Request b = MakeRequest(kSpecReformatted, "G(!CP | logged_in)");
  CachedVerdict vb = ColdVerdict(b);
  obs::MetricsSnapshot after = obs::SnapshotMetrics();
  EXPECT_EQ(va.holds, vb.holds);
  EXPECT_EQ(va.total_product_states, vb.total_product_states);
#ifndef WSV_OBS_DISABLED
  if (fobc::BytecodeEnabled()) {
    EXPECT_GT(CounterDelta(before, after, "fo/bytecode_xspec_hits"), 0u);
  }
#endif
}

TEST(BytecodeFingerprintTest, ForcedCollisionsStayCorrect) {
  // Under forced fingerprint collisions every formula maps to one
  // bucket and the structural guard carries the entire load: verdicts
  // must not change, and the collision counter must fire.
  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  CachedVerdict holds, violated;
  {
    ScopedForcedCollisions forced;
    holds = ColdVerdict(MakeRequest(kSpec, "G(!CP | logged_in)"));
    violated = ColdVerdict(MakeRequest(kSpec, "F(CP)"));
  }
  obs::MetricsSnapshot after = obs::SnapshotMetrics();
  EXPECT_TRUE(holds.holds);
  EXPECT_FALSE(violated.holds);
  EXPECT_FALSE(violated.witness_text.empty());
#ifndef WSV_OBS_DISABLED
  if (fobc::BytecodeEnabled()) {
    EXPECT_GT(CounterDelta(before, after, "fo/bytecode_fp_collisions"), 0u);
  }
#endif

  // And the collided verdicts agree with unforced runs.
  EXPECT_EQ(ColdVerdict(MakeRequest(kSpec, "G(!CP | logged_in)")).holds,
            holds.holds);
  EXPECT_EQ(ColdVerdict(MakeRequest(kSpec, "F(CP)")).witness_text,
            violated.witness_text);
}

// ---------------------------------------------------------------------
// Replay job parser

TEST(ReplayParseTest, ParsesJobsAndSkipsComments) {
  const char jsonl[] =
      "# header comment\n"
      "\n"
      "{\"spec\": \"a.wsv\", \"property\": \"F(CP)\"}\n"
      "{\"spec_text\": \"service S;\", \"label\": \"s\", "
      "\"property\": \"G(x)\", \"db_text\": \"user(a, b).\", "
      "\"pool\": [\"u\", \"v\"], \"fresh\": 2, \"unchecked\": true}\n";
  auto jobs = ParseReplayJobs(jsonl);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ((*jobs)[0].spec_path, "a.wsv");
  EXPECT_EQ((*jobs)[0].property, "F(CP)");
  EXPECT_EQ((*jobs)[1].spec_text, "service S;");
  EXPECT_EQ((*jobs)[1].label, "s");
  EXPECT_EQ((*jobs)[1].db_text, "user(a, b).");
  EXPECT_EQ((*jobs)[1].pool, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ((*jobs)[1].fresh, 2);
  EXPECT_TRUE((*jobs)[1].unchecked);
}

TEST(ReplayParseTest, RejectsMalformedLinesWithLineNumbers) {
  auto missing_prop = ParseReplayJobs("{\"spec\": \"a.wsv\"}\n");
  EXPECT_FALSE(missing_prop.ok());

  auto unknown_key = ParseReplayJobs(
      "{\"spec\": \"a.wsv\", \"property\": \"F(CP)\"}\n"
      "{\"spec\": \"a.wsv\", \"property\": \"F(CP)\", \"bogus\": 1}\n");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().message().find("line 2"),
            std::string::npos)
      << unknown_key.status().message();

  auto not_json = ParseReplayJobs("spec: a.wsv\n");
  EXPECT_FALSE(not_json.ok());
}

}  // namespace
}  // namespace cache
}  // namespace wsv
