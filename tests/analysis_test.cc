// Tests for the static-analysis subsystem: span threading through the
// spec parser, multi-diagnostic accumulation, every lint rule, the three
// renderers, and the diagnostic-bearing classification.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/lints.h"
#include "analysis/render.h"
#include "gallery/gallery.h"
#include "ws/classify.h"
#include "ws/spec_parser.h"
#include "ws/validate.h"

namespace wsv {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticSink;
using analysis::Severity;

std::vector<Diagnostic> Lint(const std::string& source) {
  DiagnosticSink sink;
  analysis::LintSpecText(source, &sink);
  return sink.diagnostics();
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& id) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule_id == id; });
}

const Diagnostic* FindDiag(const std::vector<Diagnostic>& diags,
                           const std::string& id) {
  for (const Diagnostic& d : diags) {
    if (d.rule_id == id) return &d;
  }
  return nullptr;
}

// A minimal clean skeleton the per-rule tests below perturb.
constexpr char kCleanSpec[] = R"(service Clean;
input button(label);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)";

// --- Span threading ---------------------------------------------------

TEST(SpanThreading, DeclarationSpansAreExact) {
  // The `state cart` declaration sits mid-file: line 4, after two spaces
  // of nothing — `state ` is 6 characters, so the name starts at col 7.
  const std::string spec = R"(service Spans;
database user(uname, upass);
input button(label);
state cart(pid, price);
page HP {
  options button(b) :- b = "go";
  state +cart("p", "1") :- button("go");
  target BYE :- button("go") & cart("p", "1");
}
page BYE {
}
home HP;
error ERR;
)";
  StatusOr<WebService> service = ParseServiceSpec(spec);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const RelationSymbol* cart = service->vocab().FindRelation("cart");
  ASSERT_NE(cart, nullptr);
  EXPECT_EQ(cart->span.line, 4);
  EXPECT_EQ(cart->span.column, 7);
  const RelationSymbol* button = service->vocab().FindRelation("button");
  ASSERT_NE(button, nullptr);
  EXPECT_EQ(button->span.line, 3);
  EXPECT_EQ(button->span.column, 7);
}

TEST(SpanThreading, RuleSpansPointAtTheHead) {
  const std::string spec = R"(service Spans;
input button(label);
state done;
page HP {
  options button(b) :- b = "go";
  state +done :- button("go");
  target BYE :- done & button("go");
}
page BYE {
}
home HP;
error ERR;
)";
  StatusOr<WebService> service = ParseServiceSpec(spec);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const PageSchema* hp = service->FindPage("HP");
  ASSERT_NE(hp, nullptr);
  ASSERT_EQ(hp->state_rules.size(), 1u);
  // `  state +done ...` — the head relation name after "  state +".
  EXPECT_EQ(hp->state_rules[0].span.line, 6);
  EXPECT_EQ(hp->state_rules[0].span.column, 10);
  ASSERT_EQ(hp->target_rules.size(), 1u);
  EXPECT_EQ(hp->target_rules[0].span.line, 7);
  EXPECT_EQ(hp->target_rules[0].span.column, 10);
}

TEST(SpanThreading, ParseErrorSpanRecovered) {
  std::vector<Diagnostic> diags = Lint("service X;\ninput button(label;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "WSV-PARSE-001");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].span.line, 2);
  EXPECT_EQ(diags[0].span.column, 19);
}

TEST(SpanThreading, SpanFromMessageParsesLocations) {
  Span s = analysis::SpanFromMessage("oops at line 12, column 34");
  EXPECT_EQ(s.line, 12);
  EXPECT_EQ(s.column, 34);
  EXPECT_FALSE(analysis::SpanFromMessage("no location here").IsValid());
}

// --- Multi-diagnostic accumulation ------------------------------------

TEST(Validation, ReportsEveryErrorInOnePass) {
  // Two independent validation errors: a free body variable and a
  // non-sentence target body. The old first-error path stopped at one.
  const std::string spec = R"(service Multi;
state seen(x);
input button(label);
page HP {
  options button(b) :- b = "go";
  state +seen("k") :- button("go") & loose = "x";
  target BYE :- button(z);
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  EXPECT_TRUE(HasRule(diags, "WSV-VAL-003"));
  EXPECT_TRUE(HasRule(diags, "WSV-VAL-007"));
  size_t errors = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
  }
  EXPECT_GE(errors, 2u);

  // The wrapped Status still reports the first error only.
  StatusOr<WebService> parsed = ParseServiceSpecWithoutValidation(spec);
  ASSERT_TRUE(parsed.ok());
  Status st = ValidateService(*parsed);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Validation, DiagnosticsArriveSortedBySpan) {
  const std::string spec = R"(service Multi;
state seen(x);
input button(label);
page HP {
  options button(b) :- b = "go";
  state +seen("k") :- button("go") & loose = "x";
  target BYE :- button(z);
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  ASSERT_GE(diags.size(), 2u);
  for (size_t i = 1; i < diags.size(); ++i) {
    if (diags[i - 1].span.IsValid() && diags[i].span.IsValid()) {
      EXPECT_FALSE(diags[i].span < diags[i - 1].span);
    }
  }
}

// --- One test per lint rule -------------------------------------------

TEST(Lints, Thm37NonGroundStateAtomInOptionsRule) {
  const std::string spec = R"(service T;
state seen(x);
input pick(x);
page HP {
  options pick(x) :- seen(x);
  state +seen(x) :- pick(x);
  target BYE :- seen("k");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-IB-002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->anchor, "Theorem 3.7");
  EXPECT_EQ(d->span.line, 5);
}

TEST(Lints, Thm38QuantifiedVariableInStateAtom) {
  const std::string spec = R"(service T;
state log(p, a);
state flagged(p);
input pickid(p);
input payamount(a);
page HP {
  options pickid(p) :- p = "p1";
  options payamount(a) :- a = "1";
  state +log(p, a) :- pickid(p) & payamount(a);
  state +flagged(p) :- pickid(p) & (exists a . payamount(a) & log(p, a));
  target BYE :- flagged("p1");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-IB-003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->anchor, "Theorem 3.8");
}

TEST(Lints, Thm39PrevInputNeverFedByPredecessor) {
  const std::string spec = R"(service T;
state paid(a);
input button(label);
input amount(a);
page HP {
  options button(b) :- b = "pay";
  target PAY :- button("pay");
}
page PAY {
  options button(b) :- b = "ok";
  state +paid(a) :- prev.amount(a) & button("ok");
  target BYE :- paid("1");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-IB-004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->anchor, "Theorem 3.9");
  EXPECT_EQ(d->page, "PAY");
}

TEST(Lints, Thm39CleanWhenPredecessorOffersTheInput) {
  const std::string spec = R"(service T;
state paid(a);
input button(label);
input amount(a);
page HP {
  options button(b) :- b = "pay";
  options amount(a) :- a = "1" | a = "2";
  target PAY :- button("pay");
}
page PAY {
  options button(b) :- b = "ok";
  state +paid(a) :- prev.amount(a) & button("ok");
  target BYE :- paid("1");
}
page BYE {
}
home HP;
error ERR;
)";
  EXPECT_FALSE(HasRule(Lint(spec), "WSV-IB-004"));
}

TEST(Lints, UnguardedQuantifier) {
  const std::string spec = R"(service T;
database item(x);
state found;
input button(label);
page HP {
  options button(b) :- b = "go";
  state +found :- (exists x . item(x) & true) & button("go");
  target BYE :- found;
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-IB-001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->anchor, "Theorem 3.5");
}

TEST(Lints, UnreachablePage) {
  const std::string spec = R"(service T;
input button(label);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go");
}
page ORPHAN {
  options button(b) :- b = "x";
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-NAV-001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ORPHAN"), std::string::npos);
}

TEST(Lints, OverlappingTargetRules) {
  const std::string spec = R"(service T;
input button(label);
input flag(x);
page HP {
  options button(b) :- b = "a";
  options flag(x) :- x = "on";
  target P1 :- button("a");
  target P2 :- flag("on");
}
page P1 {
}
page P2 {
}
home HP;
error ERR;
)";
  EXPECT_TRUE(HasRule(Lint(spec), "WSV-NAV-002"));
}

TEST(Lints, DisjointTargetRulesByButtonLabelAreClean) {
  const std::string spec = R"(service T;
input button(label);
page HP {
  options button(b) :- b = "a" | b = "b";
  target P1 :- button("a");
  target P2 :- button("b");
}
page P1 {
}
page P2 {
}
home HP;
error ERR;
)";
  EXPECT_FALSE(HasRule(Lint(spec), "WSV-NAV-002"));
}

TEST(Lints, DeadStateReadNeverWritten) {
  const std::string spec = R"(service T;
state ghost(x);
input button(label);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go") & ghost("k");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-DEAD-001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(Lints, DeadStateWrittenNeverRead) {
  const std::string spec = R"(service T;
state audit(x);
input button(label);
page HP {
  options button(b) :- b = "go";
  state +audit("k") :- button("go");
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-DEAD-002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
}

TEST(Lints, UnusedInputRelation) {
  const std::string spec = R"(service T;
input button(label);
input neverused(x);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)";
  EXPECT_TRUE(HasRule(Lint(spec), "WSV-DEAD-003"));
}

TEST(Lints, ActionWithoutRule) {
  const std::string spec = R"(service T;
input button(label);
action notify(who);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)";
  EXPECT_TRUE(HasRule(Lint(spec), "WSV-DEAD-004"));
}

TEST(Lints, UnreferencedDatabaseRelation) {
  const std::string spec = R"(service T;
database prices(pid, price);
input button(label);
page HP {
  options button(b) :- b = "go";
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)";
  EXPECT_TRUE(HasRule(Lint(spec), "WSV-DEAD-005"));
}

TEST(Lints, LiteralOutsideOptionsDomain) {
  const std::string spec = R"(service T;
input button(label);
page HP {
  options button(b) :- b = "yes" | b = "no";
  target BYE :- button("maybe");
}
page BYE {
}
home HP;
error ERR;
)";
  std::vector<Diagnostic> diags = Lint(spec);
  const Diagnostic* d = FindDiag(diags, "WSV-DOM-001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("maybe"), std::string::npos);
}

TEST(Lints, CleanSkeletonHasNoWarningsOrErrors) {
  for (const Diagnostic& d : Lint(kCleanSpec)) {
    EXPECT_EQ(d.severity, Severity::kNote) << d.rule_id << ": " << d.message;
  }
}

TEST(Lints, GallerySpecsLintCleanUnderWerror) {
  for (const std::string* source :
       {&EcommerceSpecText(), &LoginSpecText()}) {
    DiagnosticSink sink;
    analysis::LintSpecText(*source, &sink);
    EXPECT_EQ(sink.error_count(), 0u);
    EXPECT_EQ(sink.warning_count(), 0u)
        << analysis::RenderText(sink.diagnostics(), *source, "gallery");
  }
}

// --- Classification lists every reason --------------------------------

TEST(Classify, EcommerceListsAllPropositionalViolations) {
  StatusOr<WebService> service = BuildEcommerceService();
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ServiceClassification cls = ClassifyService(*service);
  // The reconstruction leans on the Theorem 3.7/3.8 relaxations (e.g.
  // `options cartitem(p, pr) :- cart(p, pr)`), so the strict checker
  // rejects it — and must list every offending rule, not just the first.
  EXPECT_FALSE(cls.input_bounded);
  EXPECT_FALSE(cls.propositional);
  EXPECT_FALSE(cls.fully_propositional);
  EXPECT_GE(cls.input_bounded_diags.size(), 2u);
  for (const Diagnostic& d : cls.input_bounded_diags) {
    EXPECT_EQ(d.rule_id.rfind("WSV-IB-", 0), 0u) << d.rule_id;
  }
  EXPECT_GE(cls.propositional_diags.size(), 2u);
  for (const Diagnostic& d : cls.propositional_diags) {
    EXPECT_TRUE(d.rule_id == "WSV-CLS-001" || d.rule_id == "WSV-CLS-002")
        << d.rule_id;
    EXPECT_EQ(d.anchor, "Theorem 4.4");
  }
  EXPECT_GE(cls.fully_propositional_diags.size(), 2u);
  std::string rendered = cls.ToString();
  EXPECT_NE(rendered.find("WSV-CLS-001"), std::string::npos);
  EXPECT_NE(rendered.find("WSV-IB-"), std::string::npos);
}

// --- Renderers --------------------------------------------------------

TEST(Render, TextShowsCaretAndSummary) {
  const std::string spec = "service X;\ninput button(label;\n";
  DiagnosticSink sink;
  analysis::LintSpecText(spec, &sink);
  std::string out =
      analysis::RenderText(sink.diagnostics(), spec, "broken.wsv");
  EXPECT_NE(out.find("broken.wsv:2:19: error:"), std::string::npos);
  EXPECT_NE(out.find("[WSV-PARSE-001]"), std::string::npos);
  EXPECT_NE(out.find("input button(label;"), std::string::npos);
  EXPECT_NE(out.find("^"), std::string::npos);
  EXPECT_NE(out.find("1 error, 0 warnings, 0 notes"), std::string::npos);
}

TEST(Render, JsonCarriesRuleSpanSeverityAnchor) {
  DiagnosticSink sink;
  sink.Report("WSV-IB-002", Severity::kNote, Span{11, 22, 11, 26},
              "state atom in input rule is not ground", "", "Theorem 3.7",
              "HP");
  std::string out = analysis::RenderJson(sink.diagnostics(), "t.wsv");
  EXPECT_NE(out.find("\"rule\": \"WSV-IB-002\""), std::string::npos);
  EXPECT_NE(out.find("\"severity\": \"note\""), std::string::npos);
  EXPECT_NE(out.find("\"line\": 11"), std::string::npos);
  EXPECT_NE(out.find("\"column\": 22"), std::string::npos);
  EXPECT_NE(out.find("\"anchor\": \"Theorem 3.7\""), std::string::npos);
  EXPECT_NE(out.find("\"notes\": 1"), std::string::npos);
}

TEST(Render, JsonEscapesStrings) {
  DiagnosticSink sink;
  sink.Report("WSV-VAL-001", Severity::kError, Span{},
              "bad \"quoted\"\tvalue\n");
  std::string out = analysis::RenderJson(sink.diagnostics(), "a\\b.wsv");
  EXPECT_NE(out.find("bad \\\"quoted\\\"\\tvalue\\n"), std::string::npos);
  EXPECT_NE(out.find("a\\\\b.wsv"), std::string::npos);
}

TEST(Render, SarifStructure) {
  DiagnosticSink sink;
  sink.Report("WSV-NAV-001", Severity::kWarning, Span{3, 6, 3, 12},
              "page P is unreachable");
  std::string out = analysis::RenderSarif(sink.diagnostics(), "t.wsv");
  EXPECT_NE(out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(out.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"wsvcli\""), std::string::npos);
  EXPECT_NE(out.find("\"ruleId\": \"WSV-NAV-001\""), std::string::npos);
  EXPECT_NE(out.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(out.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"startColumn\": 6"), std::string::npos);
}

// --- Rule registry ----------------------------------------------------

TEST(Registry, EveryRuleHasUniqueIdAndSummary) {
  std::set<std::string> ids;
  for (const analysis::RuleInfo& rule : analysis::RuleRegistry()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_NE(std::string(rule.summary), "");
  }
  EXPECT_NE(analysis::FindRule("WSV-IB-002"), nullptr);
  EXPECT_EQ(analysis::FindRule("WSV-NOPE-999"), nullptr);
}

// The registry is the single source of truth for which pass owns each
// rule: every entry names exactly one known emitting pass (or is
// explicitly "reserved"). A new rule with a novel pass name must be
// added to this list — that is the point: the registry and the code
// cannot drift apart silently again.
TEST(Registry, EveryRuleNamesExactlyOneEmittingPass) {
  const std::set<std::string> known_passes = {
      "LintSpecText",
      "ValidateServiceDiagnostics",
      "CollectInputBoundedDiagnostics",
      "CollectPropositionalDiagnostics",
      "CollectFullyPropositionalDiagnostics",
      "LintLosslessPrev",
      "LintUnreachablePages",
      "LintOverlappingTargets",
      "LintDeadSymbols",
      "LintDepGraph",
      "LintOptionsDomain",
      "reserved",
  };
  for (const analysis::RuleInfo& rule : analysis::RuleRegistry()) {
    ASSERT_NE(rule.pass, nullptr) << rule.id;
    EXPECT_EQ(known_passes.count(rule.pass), 1u)
        << rule.id << " names unknown pass '" << rule.pass << "'";
  }
}

// And the passes actually emit what the registry promises: a small
// corpus of deliberately bad specs (plus the gallery e-commerce service
// for the classification rules) must trigger every non-reserved ID, and
// every emitted diagnostic must carry its registered default severity.
TEST(Registry, CorpusTriggersEveryRegisteredRule) {
  const std::vector<std::string> corpus = {
      // WSV-PARSE-001.
      "service X;\ninput button(label;\n",
      // Validation: VAL-001 (ghost), VAL-002 (arity), VAL-003 (loose),
      // VAL-004 (duplicate state rule), VAL-005 (action atom in a rule
      // body), VAL-007 (free z in a target). VAL-008 is unreachable from
      // text — the parser desugars repeated head variables — so it gets
      // a programmatically mutated service below.
      R"(service Val;
state seen(x);
state pair(a, b);
input button(label);
action act(v);
page HP {
  options button(b) :- b = "go";
  state +seen("k") :- button("go") & loose = "x";
  state +seen("a", "b") :- button("go");
  state +pair(y, y) :- seen(y) & button("go");
  state +ghost("x") :- button("go");
  state +seen("m") :- act("a") & button("go");
  state +seen("d") :- button("go");
  state +seen("d") :- button("go");
  action act(v) :- v = "x" & button("go");
  target BYE :- button(z);
}
page BYE {
}
home HP;
error ERR;
)",
      // VAL-006: no home page declared. (The other VAL-006 shapes —
      // error page inside the page set, no pages — are unreachable from
      // text: the parser rejects `error HP;` as a duplicate symbol.)
      R"(service Err;
input button(label);
page HP {
  options button(b) :- b = "go";
  target HP :- button("go");
}
error ERR;
)",
      // Lints: IB-001 (unguarded exists), IB-002 (state atom with
      // variables in an options rule), IB-003 (quantified w in the
      // state atom s1(w)), IB-004 (prev.amount never offered by BYE's
      // predecessor), NAV-001 (ORPHAN), NAV-002 (targets to BYE and PG2
      // not provably disjoint), DEAD-001 (never written), DEAD-002
      // (written never read), DEAD-003 (unused), DEAD-004 (action
      // without rule), DEAD-005 (unreferenced db), DEP-001 (junk and
      // amount feed only s1), DEP-002 (s1 feeds only junk), DOM-001
      // (button("zzz") outside the options domain).
      R"(service Bad;
database db1(v), dbunused(v);
state s1(x);
state never_written(x);
state write_only(x);
input button(label);
input unused_input(u);
input junk(j);
input amount(a);
input flag(x);
action act(v);
page HP {
  options button(b) :- b = "go" | b = "stop";
  options junk(j) :- s1(j);
  options flag(x) :- x = "on";
  state +s1("a") :- button("go");
  state +write_only("w") :- button("go");
  state +s1("q") :- (exists v . db1(v) & true) & button("go");
  state +s1("e") :- (exists w . button(w) & s1(w)) & button("go");
  target BYE :- button("go") & !never_written("x") & button("zzz");
  target PG2 :- flag("on");
}
page BYE {
  options button(b) :- b = "back";
  state +s1("b") :- prev.junk("j") & button("back");
  state +s1("c") :- prev.amount("1") & button("back");
}
page PG2 {
}
page ORPHAN {
}
home HP;
error ERR;
)",
  };
  std::set<std::string> emitted;
  for (const std::string& spec : corpus) {
    for (const Diagnostic& d : Lint(spec)) {
      const analysis::RuleInfo* info = analysis::FindRule(d.rule_id);
      ASSERT_NE(info, nullptr) << "unregistered rule " << d.rule_id;
      EXPECT_EQ(d.severity, info->severity) << d.rule_id;
      emitted.insert(d.rule_id);
    }
  }
  // VAL-008 cannot be produced from source text (the parser desugars
  // repeated head variables into fresh-variable equalities), so mutate a
  // parsed service's rule head directly and validate the result.
  {
    StatusOr<WebService> parsed = ParseServiceSpecWithoutValidation(
        R"(service V8;
state pair(a, b);
input button(label);
page HP {
  options button(b) :- b = "go";
  state +pair(y, z) :- button("go") & y = "1" & z = "2";
  target BYE :- button("go");
}
page BYE {
}
home HP;
error ERR;
)");
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    WebService mutated;
    mutated.set_name(parsed->name());
    mutated.mutable_vocab() = parsed->vocab();
    for (const PageSchema& page : parsed->pages()) {
      PageSchema copy = page;
      if (copy.name == "HP") {
        ASSERT_EQ(copy.state_rules.size(), 1u);
        copy.state_rules[0].head_vars = {"y", "y"};
      }
      ASSERT_TRUE(mutated.AddPage(std::move(copy)).ok());
    }
    mutated.set_home_page(parsed->home_page());
    mutated.set_error_page(parsed->error_page());
    DiagnosticSink sink;
    ValidateServiceDiagnostics(mutated, &sink);
    EXPECT_TRUE(HasRule(sink.diagnostics(), "WSV-VAL-008"));
    for (const Diagnostic& d : sink.diagnostics()) {
      const analysis::RuleInfo* info = analysis::FindRule(d.rule_id);
      ASSERT_NE(info, nullptr) << "unregistered rule " << d.rule_id;
      emitted.insert(d.rule_id);
    }
  }
  // The classification passes run outside LintSpecText; the gallery
  // e-commerce service leaves the propositional fragments in every way
  // the CLS rules describe.
  {
    StatusOr<WebService> service = BuildEcommerceService();
    ASSERT_TRUE(service.ok());
    DiagnosticSink sink;
    CollectPropositionalDiagnostics(*service, &sink);
    CollectFullyPropositionalDiagnostics(*service, &sink);
    for (const Diagnostic& d : sink.diagnostics()) {
      const analysis::RuleInfo* info = analysis::FindRule(d.rule_id);
      ASSERT_NE(info, nullptr) << "unregistered rule " << d.rule_id;
      emitted.insert(d.rule_id);
    }
  }
  for (const analysis::RuleInfo& rule : analysis::RuleRegistry()) {
    if (std::string(rule.pass) == "reserved") continue;
    EXPECT_EQ(emitted.count(rule.id), 1u)
        << rule.id << " is registered for pass " << rule.pass
        << " but the corpus never triggered it";
  }
}

}  // namespace
}  // namespace wsv
