#include <gtest/gtest.h>

#include "fo/lexer.h"

namespace wsv {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> out;
  for (const Token& t : *tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, BasicTokens) {
  auto kinds = Kinds("foo(x, \"s\") :- 42 != y;");
  std::vector<TokenKind> expected{
      TokenKind::kIdent,  TokenKind::kLParen,    TokenKind::kIdent,
      TokenKind::kComma,  TokenKind::kString,    TokenKind::kRParen,
      TokenKind::kColonDash, TokenKind::kNumber, TokenKind::kNotEquals,
      TokenKind::kIdent,  TokenKind::kSemicolon, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, TwoCharOperators) {
  auto kinds = Kinds(":- != -> - ! =");
  std::vector<TokenKind> expected{
      TokenKind::kColonDash, TokenKind::kNotEquals, TokenKind::kArrow,
      TokenKind::kMinus,     TokenKind::kNot,       TokenKind::kEquals,
      TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  auto kinds = Kinds("a # comment ( ) ;\nb // another\nc");
  std::vector<TokenKind> expected{TokenKind::kIdent, TokenKind::kIdent,
                                  TokenKind::kIdent, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"("a\"b" "c\nd" "e\\f")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b");
  EXPECT_EQ((*tokens)[1].text, "c\nd");
  EXPECT_EQ((*tokens)[2].text, "e\\f");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto st = Tokenize("a @ b");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, PositionsTrackLines) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto kinds = Kinds("");
  EXPECT_EQ(kinds, std::vector<TokenKind>{TokenKind::kEof});
  EXPECT_EQ(Kinds("   \n\t "), std::vector<TokenKind>{TokenKind::kEof});
}

TEST(TokenStreamTest, PeekNextAndTryConsume) {
  auto tokens = Tokenize("a b");
  ASSERT_TRUE(tokens.ok());
  TokenStream ts(std::move(*tokens));
  EXPECT_EQ(ts.Peek().text, "a");
  EXPECT_EQ(ts.Peek(1).text, "b");
  EXPECT_TRUE(ts.TryConsumeIdent("a"));
  EXPECT_FALSE(ts.TryConsumeIdent("a"));
  EXPECT_TRUE(ts.TryConsumeIdent("b"));
  EXPECT_TRUE(ts.AtEnd());
  // Peeking past the end stays on Eof.
  EXPECT_EQ(ts.Peek(5).kind, TokenKind::kEof);
}

TEST(TokenStreamTest, ExpectErrorsMentionPosition) {
  auto tokens = Tokenize("xyz");
  ASSERT_TRUE(tokens.ok());
  TokenStream ts(std::move(*tokens));
  Status st = ts.Expect(TokenKind::kLParen, "'('");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("xyz"), std::string::npos);
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace wsv
