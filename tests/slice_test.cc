// Differential fuzz for the property-directed spec slicer.
//
// The slicer's contract (analysis/slice.h, DESIGN.md §10) is that
// verification of a sliced service is *observationally identical* to
// verification of the full one: same verdict, same lowest-index witness,
// same databases_checked — for every property, not just the gallery
// ones. This suite hammers that contract with seeded random temporal
// properties over three gallery services, comparing a normal (sliced)
// run against a ScopedDisableSlice run of the same request, and runs
// every violated sliced verdict through the independent witness checker.
//
// The generator is deliberately ground (no closure variables): quantified
// sweeps multiply runtime without exercising any new slicer code path —
// the cone depends only on which relation symbols the leaves mention,
// which the ground pool already varies.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/slice.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/ltl_verifier.h"
#include "verify/witness_check.h"

namespace wsv {
namespace {

// Literal values the random atoms draw arguments from: a mix of values
// that occur in the gallery databases (so some leaves are sometimes
// true) and values that occur nowhere (leaves that are always false).
const char* const kValues[] = {"alice", "pw", "laptop", "p1",
                               "100",   "go", "nosuch"};

// One random ground atom: a page proposition, or a state/database
// relation applied to random literals.
std::string RandomAtom(std::mt19937_64& rng, const Vocabulary& vocab) {
  std::vector<const RelationSymbol*> pool;
  for (const RelationSymbol& r : vocab.relations()) {
    if (r.kind == SymbolKind::kPage || r.kind == SymbolKind::kState ||
        r.kind == SymbolKind::kDatabase) {
      pool.push_back(&r);
    }
  }
  const RelationSymbol& r = *pool[rng() % pool.size()];
  if (r.arity == 0) return r.name;
  std::string atom = r.name + "(";
  for (int i = 0; i < r.arity; ++i) {
    if (i > 0) atom += ", ";
    atom += "\"";
    atom += kValues[rng() % (sizeof(kValues) / sizeof(kValues[0]))];
    atom += "\"";
  }
  atom += ")";
  return atom;
}

// Depth-bounded random LTL formula over ground atoms.
std::string RandomProperty(std::mt19937_64& rng, const Vocabulary& vocab,
                           int depth) {
  if (depth <= 0) return RandomAtom(rng, vocab);
  switch (rng() % 8) {
    case 0:
      return "!(" + RandomProperty(rng, vocab, depth - 1) + ")";
    case 1:
      return "G(" + RandomProperty(rng, vocab, depth - 1) + ")";
    case 2:
      return "F(" + RandomProperty(rng, vocab, depth - 1) + ")";
    case 3:
      return "X(" + RandomProperty(rng, vocab, depth - 1) + ")";
    case 4:
      return "(" + RandomProperty(rng, vocab, depth - 1) + " & " +
             RandomProperty(rng, vocab, depth - 1) + ")";
    case 5:
      return "(" + RandomProperty(rng, vocab, depth - 1) + " | " +
             RandomProperty(rng, vocab, depth - 1) + ")";
    case 6:
      return "(" + RandomProperty(rng, vocab, depth - 1) + " U " +
             RandomProperty(rng, vocab, depth - 1) + ")";
    default:
      return RandomAtom(rng, vocab);
  }
}

struct Fixture {
  const char* name;
  WebService service;
  Instance db;
  LtlVerifyOptions options;
};

std::vector<Fixture> BuildFixtures() {
  std::vector<Fixture> fixtures;
  {
    Fixture f;
    f.name = "ecommerce";
    f.service = std::move(BuildEcommerceService()).value();
    f.db = EcommerceSmallDatabase();
    f.options.graph.constant_pool = {Value::Intern("alice"),
                                     Value::Intern("pw")};
    fixtures.push_back(std::move(f));
  }
  {
    Fixture f;
    f.name = "login";
    f.service = std::move(BuildLoginService()).value();
    f.db = LoginDatabase();
    fixtures.push_back(std::move(f));
  }
  {
    Fixture f;
    f.name = "paper-clear-loop";
    f.service = std::move(BuildPaperClearLoopService()).value();
    f.db = LoginDatabase();
    fixtures.push_back(std::move(f));
  }
  for (Fixture& f : fixtures) {
    // Random ground properties are rarely input-bounded; the bounded
    // search is run regardless, and verdict identity is what's under
    // test.
    f.options.require_input_bounded = false;
  }
  return fixtures;
}

// The core oracle: one property, one service, sliced vs unsliced.
void ExpectSlicedRunIdentical(const Fixture& f,
                              const TemporalProperty& property,
                              const std::string& text) {
  LtlVerifier verifier(&f.service, f.options);
  auto sliced = verifier.VerifyOnDatabase(property, f.db);
  ASSERT_TRUE(sliced.ok()) << text << ": " << sliced.status().message();

  StatusOr<LtlVerifyResult> unsliced = Status::Internal("unset");
  {
    analysis::ScopedDisableSlice off;
    LtlVerifier plain(&f.service, f.options);
    unsliced = plain.VerifyOnDatabase(property, f.db);
  }
  ASSERT_TRUE(unsliced.ok()) << text << ": " << unsliced.status().message();

  EXPECT_EQ(sliced->holds, unsliced->holds) << f.name << ": " << text;
  EXPECT_EQ(sliced->databases_checked, unsliced->databases_checked)
      << f.name << ": " << text;
  EXPECT_EQ(sliced->complete_within_bounds, unsliced->complete_within_bounds)
      << f.name << ": " << text;
  ASSERT_EQ(sliced->counterexample.has_value(),
            unsliced->counterexample.has_value())
      << f.name << ": " << text;
  if (sliced->counterexample.has_value()) {
    // Lowest-index-wins witness selection must be slicing-invariant:
    // the full-spec re-check resumes from the sliced lasso marker, so
    // the two runs must surface the byte-identical counterexample.
    EXPECT_EQ(sliced->counterexample->ToString(),
              unsliced->counterexample->ToString())
        << f.name << ": " << text;
    EXPECT_TRUE(
        ValidateWitness(f.service, property, *sliced->counterexample).ok())
        << f.name << ": " << text;
  }
}

TEST(SliceFuzz, RandomPropertiesVerdictAndWitnessIdentical) {
  constexpr int kPropertiesPerService = 40;
  std::vector<Fixture> fixtures = BuildFixtures();
  int violated = 0;
  int holds = 0;
  for (size_t s = 0; s < fixtures.size(); ++s) {
    const Fixture& f = fixtures[s];
    for (int i = 0; i < kPropertiesPerService; ++i) {
      std::mt19937_64 rng(0x51CE0000u + 1000 * s + i);
      const std::string text =
          RandomProperty(rng, f.service.vocab(), /*depth=*/3);
      auto prop = ParseTemporalProperty(text, &f.service.vocab());
      ASSERT_TRUE(prop.ok()) << text << ": " << prop.status().message();
      SCOPED_TRACE(std::string(f.name) + ": " + text);
      ExpectSlicedRunIdentical(f, *prop, text);
      LtlVerifier verifier(&f.service, f.options);
      auto r = verifier.VerifyOnDatabase(*prop, f.db);
      if (r.ok()) (r->holds ? holds : violated)++;
    }
  }
  // The generator must exercise both phases of the two-phase check: the
  // sliced probe alone (HOLDS) and the full-spec re-run from the lasso
  // marker (VIOLATED). A degenerate corpus would vacuously pass.
  EXPECT_GE(violated, 5);
  EXPECT_GE(holds, 5);
}

// The gallery properties the benchmarks track, pinned here as
// deterministic regression anchors (the fuzz corpus drifts whenever the
// generator changes; these never do).
TEST(SliceFuzz, GalleryPropertiesVerdictIdentical) {
  std::vector<Fixture> fixtures = BuildFixtures();
  const Fixture& ecommerce = fixtures[0];
  const Fixture& login = fixtures[1];
  for (const char* text :
       {"G(!PIP) | F(PIP & F(CC))", "G(!error(\"no such page\"))"}) {
    auto prop = ParseTemporalProperty(text, &ecommerce.service.vocab());
    ASSERT_TRUE(prop.ok()) << text;
    ExpectSlicedRunIdentical(ecommerce, *prop, text);
  }
  for (const char* text : {"G(!CP | logged_in)", "F(BYE) | G(!BYE)"}) {
    auto prop = ParseTemporalProperty(text, &login.service.vocab());
    ASSERT_TRUE(prop.ok()) << text;
    ExpectSlicedRunIdentical(login, *prop, text);
  }
}

// Quantified sweep: one universally closed property per service keeps
// the multi-valuation path (per-valuation probe markers, lowest-index
// selection across valuations) under differential coverage.
TEST(SliceFuzz, QuantifiedClosureSweepIdentical) {
  std::vector<Fixture> fixtures = BuildFixtures();
  Fixture& ecommerce = fixtures[0];
  ecommerce.options.closure_candidates = {Value::Intern("p1"),
                                          Value::Intern("100"),
                                          Value::Intern("alice")};
  const char* text =
      "forall pid . (G(!cart(pid, \"100\")) | F(prod_prices(pid, \"100\")))";
  auto prop = ParseTemporalProperty(text, &ecommerce.service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().message();
  ExpectSlicedRunIdentical(ecommerce, *prop, text);
}

}  // namespace
}  // namespace wsv
