#include <gtest/gtest.h>

#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace wsv {
namespace {

TEST(ValueTest, InterningIsStable) {
  Value a = Value::Intern("apple");
  Value b = Value::Intern("banana");
  Value a2 = Value::Intern("apple");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.name(), "apple");
}

TEST(ValueTest, InvalidSentinel) {
  Value v;
  EXPECT_FALSE(v.valid());
  EXPECT_TRUE(Value::Intern("x").valid());
}

TEST(ValueTest, FreshAvoidsCollisions) {
  Value named = Value::Intern("fresh7");
  std::set<Value> seen{named};
  for (int i = 0; i < 20; ++i) {
    Value f = Value::Fresh("fresh");
    EXPECT_TRUE(seen.insert(f).second) << f.name();
  }
}

TEST(TupleTest, ToString) {
  Tuple t{Value::Intern("a"), Value::Intern("b")};
  EXPECT_EQ(TupleToString(t), "(a, b)");
}

TEST(RelationTest, InsertEraseContains) {
  Relation r(2);
  Tuple t{Value::Intern("x"), Value::Intern("y")};
  EXPECT_TRUE(r.Insert(t));
  EXPECT_TRUE(r.Contains(t));
  EXPECT_EQ(r.size(), 1u);
  r.Erase(t);
  EXPECT_FALSE(r.Contains(t));
  // Arity mismatch rejected.
  EXPECT_FALSE(r.Insert(Tuple{Value::Intern("x")}));
}

TEST(RelationTest, PropositionHelpers) {
  Relation p(0);
  EXPECT_FALSE(p.AsBool());
  p.SetBool(true);
  EXPECT_TRUE(p.AsBool());
  p.SetBool(false);
  EXPECT_FALSE(p.AsBool());
}

TEST(RelationTest, StructuralEquality) {
  Relation a(1), b(1);
  a.Insert({Value::Intern("v")});
  EXPECT_FALSE(a == b);
  b.Insert({Value::Intern("v")});
  EXPECT_TRUE(a == b);
}

TEST(InstanceTest, AddFactCreatesRelationAndDomain) {
  Instance inst;
  ASSERT_TRUE(inst.AddFact("user", {Value::Intern("ann"),
                                    Value::Intern("pw")}).ok());
  const Relation* rel = inst.FindRelation("user");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 2);
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(inst.domain().count(Value::Intern("ann")), 1u);
}

TEST(InstanceTest, ArityConflictRejected) {
  Instance inst;
  ASSERT_TRUE(inst.EnsureRelation("r", 2).ok());
  EXPECT_FALSE(inst.EnsureRelation("r", 3).ok());
}

TEST(InstanceTest, ConstantsInterpretted) {
  Instance inst;
  inst.SetConstant("min", Value::Intern("m0"));
  ASSERT_TRUE(inst.FindConstant("min").has_value());
  EXPECT_EQ(inst.FindConstant("min")->name(), "m0");
  EXPECT_FALSE(inst.FindConstant("max").has_value());
}

TEST(InstanceTest, StructuralComparison) {
  Instance a, b;
  ASSERT_TRUE(a.AddFact("r", {Value::Intern("1")}).ok());
  ASSERT_TRUE(b.AddFact("r", {Value::Intern("1")}).ok());
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(b.AddFact("r", {Value::Intern("2")}).ok());
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(VocabularyTest, AddAndFind) {
  Vocabulary v;
  ASSERT_TRUE(v.AddRelation("user", 2, SymbolKind::kDatabase).ok());
  ASSERT_TRUE(v.AddRelation("err", 0, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddConstant("name", true).ok());
  ASSERT_TRUE(v.AddConstant("i0", false).ok());

  const RelationSymbol* user = v.FindRelation("user");
  ASSERT_NE(user, nullptr);
  EXPECT_EQ(user->arity, 2);
  EXPECT_EQ(user->kind, SymbolKind::kDatabase);
  EXPECT_TRUE(v.FindRelation("err")->IsProposition());

  EXPECT_TRUE(v.IsConstant("name"));
  EXPECT_TRUE(v.IsInputConstant("name"));
  EXPECT_TRUE(v.IsConstant("i0"));
  EXPECT_FALSE(v.IsInputConstant("i0"));
  EXPECT_EQ(v.InputConstants(), std::vector<std::string>{"name"});
}

TEST(VocabularyTest, RejectsDuplicatesAndBadNames) {
  Vocabulary v;
  ASSERT_TRUE(v.AddRelation("r", 1, SymbolKind::kInput).ok());
  EXPECT_FALSE(v.AddRelation("r", 1, SymbolKind::kInput).ok());
  EXPECT_FALSE(v.AddConstant("r", false).ok());
  EXPECT_FALSE(v.AddRelation("bad name", 1, SymbolKind::kInput).ok());
  EXPECT_FALSE(v.AddRelation("neg", -1, SymbolKind::kInput).ok());
  ASSERT_TRUE(v.AddConstant("c", false).ok());
  EXPECT_FALSE(v.AddRelation("c", 0, SymbolKind::kState).ok());
}

TEST(VocabularyTest, RelationsOfKind) {
  Vocabulary v;
  ASSERT_TRUE(v.AddRelation("a", 1, SymbolKind::kInput).ok());
  ASSERT_TRUE(v.AddRelation("b", 1, SymbolKind::kState).ok());
  ASSERT_TRUE(v.AddRelation("c", 2, SymbolKind::kInput).ok());
  std::vector<RelationSymbol> inputs = v.RelationsOfKind(SymbolKind::kInput);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0].name, "a");
  EXPECT_EQ(inputs[1].name, "c");
}

}  // namespace
}  // namespace wsv
