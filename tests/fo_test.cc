#include <gtest/gtest.h>

#include "fo/evaluator.h"
#include "fo/formula.h"
#include "fo/input_bounded.h"
#include "fo/parser.h"
#include "fo/rewrite.h"

namespace wsv {
namespace {

Vocabulary DemoVocab() {
  Vocabulary v;
  EXPECT_TRUE(v.AddRelation("user", 2, SymbolKind::kDatabase).ok());
  EXPECT_TRUE(v.AddRelation("error", 1, SymbolKind::kState).ok());
  EXPECT_TRUE(v.AddRelation("button", 1, SymbolKind::kInput).ok());
  EXPECT_TRUE(v.AddRelation("pick", 2, SymbolKind::kState).ok());
  EXPECT_TRUE(v.AddRelation("ship", 2, SymbolKind::kAction).ok());
  EXPECT_TRUE(v.AddConstant("name", true).ok());
  EXPECT_TRUE(v.AddConstant("password", true).ok());
  return v;
}

TEST(FoParserTest, ParsesAtomsAndEqualities) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("user(name, password) & button(\"login\")", &v);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind(), Formula::Kind::kAnd);
  EXPECT_EQ((*f)->ToString(),
            "(user(name, password) & button(\"login\"))");
}

TEST(FoParserTest, ResolvesConstantsVsVariables) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("user(name, x)", &v);
  ASSERT_TRUE(f.ok());
  const Atom& atom = (*f)->atom();
  EXPECT_TRUE(atom.terms[0].is_constant_symbol());
  EXPECT_TRUE(atom.terms[1].is_variable());
}

TEST(FoParserTest, QuantifierScopesMaximally) {
  auto f = ParseFormula("exists x . p(x) & q(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), Formula::Kind::kExists);
  EXPECT_TRUE((*f)->FreeVariables().empty());
}

TEST(FoParserTest, PrecedenceImpliesWeakerThanOr) {
  auto f = ParseFormula("a | b -> c");
  ASSERT_TRUE(f.ok());
  // (a | b) -> c  ==  !(a | b) | c
  EXPECT_EQ((*f)->kind(), Formula::Kind::kOr);
  EXPECT_EQ((*f)->children()[0]->kind(), Formula::Kind::kNot);
}

TEST(FoParserTest, PrevAtoms) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("prev.button(\"login\")", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->atom().prev);
  // prev on a non-input relation is rejected.
  EXPECT_FALSE(ParseFormula("prev.user(x, y)", &v).ok());
}

TEST(FoParserTest, ChecksArity) {
  Vocabulary v = DemoVocab();
  EXPECT_FALSE(ParseFormula("user(x)", &v).ok());
  EXPECT_FALSE(ParseFormula("unknown(x)", &v).ok());
}

TEST(FoParserTest, RejectsTrailingInput) {
  EXPECT_FALSE(ParseFormula("a b").ok());
  EXPECT_FALSE(ParseFormula("").ok());
}

TEST(FoParserTest, InequalityDesugarsToNotEquals) {
  auto f = ParseFormula("x != y");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), Formula::Kind::kNot);
  EXPECT_EQ((*f)->children()[0]->kind(), Formula::Kind::kEquals);
  EXPECT_EQ((*f)->ToString(), "x != y");
}

TEST(FoAnalysisTest, FreeVariables) {
  auto f = ParseFormula("p(x) & exists y . q(x, y)");
  ASSERT_TRUE(f.ok());
  std::set<std::string> free = (*f)->FreeVariables();
  EXPECT_EQ(free, (std::set<std::string>{"x"}));
}

TEST(FoAnalysisTest, ConstantSymbolsAndLiterals) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("user(name, password) & button(\"login\")", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ConstantSymbols(),
            (std::set<std::string>{"name", "password"}));
  EXPECT_EQ((*f)->Literals(), (std::set<Value>{Value::Intern("login")}));
}

// --- Evaluation ------------------------------------------------------------

class FoEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddFact("user", {Value::Intern("ann"),
                                     Value::Intern("pw1")}).ok());
    ASSERT_TRUE(db_.AddFact("user", {Value::Intern("bob"),
                                     Value::Intern("pw2")}).ok());
    ctx_.AddLayer(&db_);
  }

  StatusOr<bool> Eval(const std::string& text, Valuation val = {}) {
    Vocabulary v = DemoVocab();
    auto f = ParseFormula(text, &v);
    if (!f.ok()) return f.status();
    return Evaluate(**f, ctx_, val);
  }

  Instance db_;
  EvalContext ctx_;
};

TEST_F(FoEvalTest, GroundAtoms) {
  ctx_.SetConstant("name", Value::Intern("ann"));
  ctx_.SetConstant("password", Value::Intern("pw1"));
  auto r = Eval("user(name, password)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  ctx_.SetConstant("password", Value::Intern("wrong"));
  EXPECT_FALSE(*Eval("user(name, password)"));
}

TEST_F(FoEvalTest, ActiveDomainQuantification) {
  auto r = Eval("exists x, y . user(x, y) & true");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // Nobody is their own password.
  EXPECT_TRUE(*Eval("forall x . user(x, x) -> false"));
}

TEST_F(FoEvalTest, NegationAndBoolean) {
  EXPECT_TRUE(*Eval("!user(\"zed\", \"pw\")"));
  EXPECT_TRUE(*Eval("true & !false"));
  EXPECT_FALSE(*Eval("false | false"));
}

TEST_F(FoEvalTest, EqualityOfLiterals) {
  EXPECT_TRUE(*Eval("\"a\" = \"a\""));
  EXPECT_FALSE(*Eval("\"a\" = \"b\""));
}

TEST_F(FoEvalTest, ValuationBindsFreeVariables) {
  Valuation val{{"x", Value::Intern("ann")}, {"y", Value::Intern("pw1")}};
  EXPECT_TRUE(*Eval("user(x, y)", val));
  val["y"] = Value::Intern("pw2");
  EXPECT_FALSE(*Eval("user(x, y)", val));
}

TEST_F(FoEvalTest, QueryEnumeration) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("user(x, y)", &v);
  ASSERT_TRUE(f.ok());
  auto tuples = EvaluateQuery(**f, {"x", "y"}, ctx_);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 2u);
  // With only x in the head, y stays unbound during evaluation: error.
  auto proj = EvaluateQuery(**f, {"x"}, ctx_);
  EXPECT_FALSE(proj.ok());
}

TEST_F(FoEvalTest, EmptyDomainSemantics) {
  Instance empty;
  EvalContext ctx;
  ctx.AddLayer(&empty);
  auto exists = ParseFormula("exists x . p(x) & true");
  ASSERT_TRUE(exists.ok());
  auto r = Evaluate(**exists, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

// --- Rewriting --------------------------------------------------------------

TEST(RewriteTest, NnfPushesNegation) {
  auto f = ParseFormula("!(p(x) & !q(x))");
  ASSERT_TRUE(f.ok());
  FormulaPtr nnf = ToNNF(**f);
  EXPECT_EQ(nnf->ToString(), "(!(p(x)) | q(x))");
}

TEST(RewriteTest, NnfQuantifierDuality) {
  auto f = ParseFormula("!(exists x . p(x) & true)");
  ASSERT_TRUE(f.ok());
  FormulaPtr nnf = ToNNF(**f);
  EXPECT_EQ(nnf->kind(), Formula::Kind::kForall);
}

TEST(RewriteTest, DnfDistributes) {
  auto f = ParseFormula("(a | b) & c");
  ASSERT_TRUE(f.ok());
  auto dnf = ToDNF(**f);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ((*dnf)->ToString(), "((a & c) | (b & c))");
}

TEST(RewriteTest, DnfRejectsQuantifiers) {
  auto f = ParseFormula("exists x . p(x) & true");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(ToDNF(**f).ok());
}

TEST(RewriteTest, SubstituteRespectsBinding) {
  auto f = ParseFormula("p(x) & exists x . q(x) & true");
  ASSERT_TRUE(f.ok());
  std::map<std::string, Term> sub{{"x", Term::Variable("z")}};
  FormulaPtr g = Substitute(**f, sub);
  EXPECT_EQ(g->ToString(), "(p(z) & (exists x . ((q(x) & true))))");
}

TEST(RewriteTest, SimplifyFoldsConstants) {
  auto f = ParseFormula("(true & p(x)) | false");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(Simplify(**f)->ToString(), "p(x)");
  auto g = ParseFormula("\"a\" = \"b\"");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(Simplify(**g)->kind(), Formula::Kind::kFalse);
  auto h = ParseFormula("x = x");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(Simplify(**h)->kind(), Formula::Kind::kTrue);
}

// --- Input-boundedness -------------------------------------------------------

TEST(InputBoundedTest, GuardedQuantifiersAccepted) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("exists x . button(x) & user(name, password)", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckInputBounded(**f, v).ok());
  auto g = ParseFormula("forall x . button(x) -> error(x)", &v);
  ASSERT_TRUE(g.ok());
  // x occurs in the state atom error(x): rejected.
  EXPECT_FALSE(CheckInputBounded(**g, v).ok());
}

TEST(InputBoundedTest, UnguardedQuantifierRejected) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("exists x . user(x, password) & true", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(CheckInputBounded(**f, v).ok());
}

TEST(InputBoundedTest, PrevGuardAccepted) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("exists x . prev.button(x) & user(x, x)", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckInputBounded(**f, v).ok());
}

TEST(InputBoundedTest, QuantifierFreeAlwaysOk) {
  Vocabulary v = DemoVocab();
  auto f = ParseFormula("error(\"x\") & !button(\"login\")", &v);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckInputBounded(**f, v).ok());
}

TEST(InputBoundedTest, InputRuleGroundStateAtoms) {
  Vocabulary v = DemoVocab();
  auto ok = ParseFormula("user(x, y) & error(\"failed\")", &v);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(CheckExistentialInputRule(**ok, v).ok());
  auto bad = ParseFormula("error(x)", &v);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(CheckExistentialInputRule(**bad, v).ok());
  auto univ = ParseFormula("forall x . button(x) -> true", &v);
  ASSERT_TRUE(univ.ok());
  EXPECT_FALSE(CheckExistentialInputRule(**univ, v).ok());
}

}  // namespace
}  // namespace wsv
