// The parallel verification engine (verify/parallel.h) and its thread
// pool. The load-bearing property is determinism: at any job count the
// engine must report exactly the serial verifier's verdict and witness,
// so most tests here are serial-vs-parallel equality checks over the
// gallery services, plus direct unit tests of the pool and of the
// cancellation plumbing.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/thread_pool.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "ltl/run_semantics.h"
#include "verify/config_graph.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"
#include "verify/witness_check.h"
#include "ws/builder.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// --- thread pool -------------------------------------------------------------

TEST(ThreadPoolTest, ResolveJobCount) {
  EXPECT_EQ(ResolveJobCount(3), 3);
  EXPECT_EQ(ResolveJobCount(1), 1);
  EXPECT_GE(ResolveJobCount(0), 1);
  EXPECT_GE(ResolveJobCount(-1), 1);
}

TEST(ThreadPoolTest, SubmitAndDrain) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after a Wait.
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasksOnly) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> blocker_started{false};
  std::atomic<int> ran{0};

  // Occupy the single worker, then queue tasks behind it.
  pool.Submit([&] {
    blocker_started.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!blocker_started.load()) {
  }
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }

  size_t dropped = pool.CancelPending();
  EXPECT_EQ(dropped, 10u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  // The in-flight blocker finished; every queued task was cancelled.
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is consumed; the pool keeps working.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

// --- serial/parallel equivalence --------------------------------------------

class ParallelLoginTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
    options_.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
    options_.require_input_bounded = true;
  }

  // Runs the property serially and at --jobs 4 and asserts identical
  // verdicts and witnesses; returns the parallel result.
  LtlVerifyResult CheckBothOnDb(const std::string& prop) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    auto serial = LtlVerifier(&service_, options_).VerifyOnDatabase(*p, db_);
    auto par =
        ParallelLtlVerifier(&service_, options_, 4).VerifyOnDatabase(*p, db_);
    EXPECT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(serial->holds, par->holds) << prop;
    EXPECT_EQ(serial->counterexample.has_value(),
              par->counterexample.has_value());
    if (serial->counterexample.has_value() &&
        par->counterexample.has_value()) {
      EXPECT_EQ(serial->counterexample->ToString(),
                par->counterexample->ToString())
          << prop;
    }
    return std::move(*par);
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(ParallelLoginTest, HoldingPropertyAgrees) {
  LtlVerifyResult r = CheckBothOnDb("G(!CP | logged_in)");
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.complete_within_bounds);
}

TEST_F(ParallelLoginTest, ViolatedPropertyAgreesOnWitness) {
  LtlVerifyResult r = CheckBothOnDb("G(!MP)");
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  // The parallel witness genuinely violates the property — cross-check
  // through the independent lasso-semantics evaluator.
  auto p = ParseTemporalProperty("G(!MP)", &service_.vocab());
  ASSERT_TRUE(p.ok());
  auto again = EvaluateLtlOnLasso(*p, r.counterexample->run,
                                  r.counterexample->database, service_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(*again);
  // And replays through the standalone witness validator.
  Status witness = ValidateWitness(service_, *p, *r.counterexample);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
}

TEST_F(ParallelLoginTest, UniversalClosureAgreesOnValuation) {
  // The valuation sweep is what gets chunked across workers; the
  // lowest-index witness must still win.
  LtlVerifyResult r = CheckBothOnDb("forall m . G(!error(m))");
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->valuation.at("m"), V("failed login"));
}

TEST_F(ParallelLoginTest, EventualityViolationAgrees) {
  LtlVerifyResult r = CheckBothOnDb("G(!CP) | F(CP & F(BYE))");
  EXPECT_FALSE(r.holds);
}

TEST_F(ParallelLoginTest, EnumeratedDatabaseSweepAgrees) {
  // Database-level fan-out: the lowest-index violating database must be
  // reported, with the same databases_checked count as the serial stop.
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  auto p = ParseTemporalProperty("G(!CP)", &service_.vocab());
  ASSERT_TRUE(p.ok());
  auto serial = LtlVerifier(&service_, options).Verify(*p);
  auto par = ParallelLtlVerifier(&service_, options, 4).Verify(*p);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_FALSE(serial->holds);
  ASSERT_FALSE(par->holds);
  EXPECT_EQ(serial->databases_checked, par->databases_checked);
  ASSERT_TRUE(par->counterexample.has_value());
  EXPECT_EQ(serial->counterexample->ToString(),
            par->counterexample->ToString());
  Status witness = ValidateWitness(service_, *p, *par->counterexample);
  EXPECT_TRUE(witness.ok()) << witness.ToString();
}

TEST_F(ParallelLoginTest, HoldingEnumeratedSweepAgrees) {
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  auto p = ParseTemporalProperty("G(!error(\"no such page\"))",
                                 &service_.vocab());
  ASSERT_TRUE(p.ok());
  auto serial = LtlVerifier(&service_, options).Verify(*p);
  auto par = ParallelLtlVerifier(&service_, options, 4).Verify(*p);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(serial->holds, par->holds);
  // With no winner, every enumerated database was checked on both sides.
  EXPECT_EQ(serial->databases_checked, par->databases_checked);
}

TEST(ParallelEcommerceTest, PaperPropertiesAgree) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;

  // Example 3.2's eventuality (violated).
  {
    auto p = ParseTemporalProperty("G(!PIP) | F(PIP & F(CC))", &ws->vocab());
    ASSERT_TRUE(p.ok());
    auto serial = LtlVerifier(&*ws, options).VerifyOnDatabase(*p, db);
    auto par = ParallelLtlVerifier(&*ws, options, 4).VerifyOnDatabase(*p, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    ASSERT_FALSE(serial->holds);
    ASSERT_FALSE(par->holds);
    EXPECT_EQ(serial->counterexample->ToString(),
              par->counterexample->ToString());
  }

  // Example 3.4's pay-before-ship (holds); two closure variables, so the
  // valuation chunking and the FO-leaf memo both get exercised.
  {
    LtlVerifyOptions closure_options = options;
    closure_options.closure_candidates = {V("p1"), V("100"), V("alice")};
    auto p = ParseTemporalProperty(
        "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
        "& pick(pid, price) & prod_prices(pid, price)) "
        "B !(conf(name, price) & ship(name, pid)))",
        &ws->vocab());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    auto serial = LtlVerifier(&*ws, closure_options).VerifyOnDatabase(*p, db);
    auto par = ParallelLtlVerifier(&*ws, closure_options, 4)
                   .VerifyOnDatabase(*p, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_TRUE(serial->holds);
    EXPECT_TRUE(par->holds);
  }
}

// --- cancellation plumbing ---------------------------------------------------

TEST(CancellationTest, ConfigGraphBuildObservesCancelCheck) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  Instance db = LoginDatabase();
  Stepper stepper(&*ws, &db);
  ConfigGraphOptions options;
  options.constant_pool = {V("alice"), V("pw"), V("u0")};
  int polls = 0;
  options.cancel_check = [&polls] { return ++polls > 3; };
  auto graph = BuildConfigGraph(stepper, options);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kCancelled);
  // The build stopped mid-way, not after exhausting the graph.
  EXPECT_EQ(polls, 4);
}

TEST(CancellationTest, ValuationSweepObservesStopPredicate) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  auto p = ParseTemporalProperty("forall m . G(!error(m))", &ws->vocab());
  ASSERT_TRUE(p.ok());
  auto automaton = BuildNegatedAutomaton(*ws, *p, true);
  ASSERT_TRUE(automaton.ok()) << automaton.status().ToString();
  auto check = LtlDatabaseCheck::Create(&*ws, options, &*p, &*automaton, db);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_GT(check->NumValuations(), 1u);

  // A stop that fires immediately aborts with kCancelled...
  uint64_t product_states = 0;
  auto cancelled = check->CheckValuations(
      0, check->NumValuations(), [](uint64_t) { return true; },
      &product_states);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(product_states, 0u);

  // ...and one that never fires finds the serial witness.
  auto found = check->CheckValuations(0, check->NumValuations(), nullptr,
                                      &product_states);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ((**found).cex.valuation.at("m"), V("failed login"));
}

}  // namespace
}  // namespace wsv
