#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ws/builder.h"
#include "ws/classify.h"
#include "ws/spec_parser.h"
#include "ws/validate.h"

namespace wsv {
namespace {

TEST(BuilderTest, BuildsSmallService) {
  ServiceBuilder b("Demo");
  b.Database("user", 2).State("err", 1).Input("button", 1);
  b.InputConstant("name").InputConstant("password");
  b.Page("HP")
      .UseInput("name")
      .UseInput("password")
      .Options("button(x)", "x = \"login\" | x = \"register\"")
      .Insert("err(\"failed\")",
              "!user(name, password) & button(\"login\")")
      .Target("CP", "user(name, password) & button(\"login\")");
  b.Page("CP");
  b.Home("HP").Error("MP");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws->pages().size(), 2u);
  const PageSchema* hp = ws->FindPage("HP");
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->input_rules.size(), 1u);
  EXPECT_EQ(hp->state_rules.size(), 1u);
  EXPECT_EQ(hp->targets, std::vector<std::string>{"CP"});
  // Head desugaring introduced an equality conjunct for "failed".
  EXPECT_EQ(hp->state_rules[0].head_vars.size(), 1u);
}

TEST(BuilderTest, ReportsUnknownSymbols) {
  ServiceBuilder b("Bad");
  b.Page("HP").Options("nosuch(x)", "true");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, PageNamesBecomePropositions) {
  ServiceBuilder b("Demo");
  b.Input("go", 0);
  b.Page("HP").UseInput("go").Target("P2", "go");
  b.Page("P2");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok());
  const RelationSymbol* hp = ws->vocab().FindRelation("HP");
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->kind, SymbolKind::kPage);
  EXPECT_NE(ws->vocab().FindRelation("E"), nullptr);
}

TEST(ValidateTest, RejectsMissingHomeOrError) {
  ServiceBuilder b("Bad");
  b.Page("HP");
  b.Error("E");
  EXPECT_FALSE(b.Build().ok());

  ServiceBuilder b2("Bad2");
  b2.Page("HP");
  b2.Home("HP");
  EXPECT_FALSE(b2.Build().ok());
}

TEST(ValidateTest, ErrorPageMustNotBeDeclared) {
  ServiceBuilder b("Bad");
  b.Page("HP");
  b.Page("E");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RejectsDuplicateStateRules) {
  ServiceBuilder b("Bad");
  b.State("s", 0);
  b.Page("HP").Insert("s", "true").Insert("s", "false");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RejectsFreeBodyVariables) {
  ServiceBuilder b("Bad");
  b.State("s", 1);
  b.Database("r", 2);
  b.Page("HP").Insert("s(x)", "r(x, y)");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RejectsActionAtomsInBodies) {
  ServiceBuilder b("Bad");
  b.Action("a", 0);
  b.State("s", 0);
  b.Page("HP").Insert("s", "a");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RejectsInputAtomsInOptionsRules) {
  ServiceBuilder b("Bad");
  b.Input("i", 1).Input("j", 1);
  b.Page("HP").Options("i(x)", "j(x)");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RejectsTargetRuleWithFreeVariables) {
  ServiceBuilder b("Bad");
  b.Database("r", 1);
  b.Page("HP").Target("HP", "r(x)");
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, InputRelationNeedsExactlyOneOptionsRule) {
  ServiceBuilder b("Bad");
  b.Input("i", 1);
  PageBuilder p = b.Page("HP");
  p.UseInput("i");  // declared but no options rule
  b.Home("HP").Error("E");
  EXPECT_FALSE(b.Build().ok());
}

// --- .wsv parser -------------------------------------------------------------

TEST(SpecParserTest, ParsesLoginService) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws->name(), "Login");
  EXPECT_EQ(ws->home_page(), "HP");
  EXPECT_EQ(ws->error_page(), "ERR");
  EXPECT_EQ(ws->pages().size(), 4u);
  const PageSchema* hp = ws->FindPage("HP");
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->input_constants,
            (std::vector<std::string>{"name", "password"}));
  EXPECT_EQ(hp->target_rules.size(), 3u);
}

TEST(SpecParserTest, ParsesFullEcommerce) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws->pages().size(), 20u);
  const PageSchema* lsp = ws->FindPage("LSP");
  ASSERT_NE(lsp, nullptr);
  EXPECT_EQ(lsp->input_rules.size(), 2u);
  EXPECT_EQ(lsp->state_rules.size(), 1u);
  // The paper's LSP targets: HP(->GBP here), PIP, CC.
  EXPECT_EQ(lsp->target_rules.size(), 3u);
  const PageSchema* pip = ws->FindPage("PIP");
  ASSERT_NE(pip, nullptr);
  // PIP's options use Prev_I atoms.
  bool has_prev = false;
  for (const Atom& atom : pip->input_rules[0].body->Atoms()) {
    if (atom.prev) has_prev = true;
  }
  EXPECT_TRUE(has_prev);
}

TEST(SpecParserTest, RoundTripsThroughToString) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  std::string printed = ws->ToString();
  EXPECT_NE(printed.find("service Login;"), std::string::npos);
  EXPECT_NE(printed.find("home HP;"), std::string::npos);
  EXPECT_NE(printed.find("options button(x)"), std::string::npos);
}

TEST(SpecParserTest, SyntaxErrorsAreReported) {
  EXPECT_FALSE(ParseServiceSpec("service;").ok());
  EXPECT_FALSE(ParseServiceSpec("service X; page P {").ok());
  EXPECT_FALSE(
      ParseServiceSpec("service X; bogus decl; home P; error E;").ok());
}

// --- classification ----------------------------------------------------------

TEST(ClassifyTest, LoginServiceIsInputBounded) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok());
  Status st = CheckInputBoundedService(*ws);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ClassifyTest, EcommerceIsNotFullyInputBounded) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok());
  // The CC cartitem options read a state relation with variables, like
  // the authors' own demo site.
  Status st = CheckInputBoundedService(*ws);
  EXPECT_FALSE(st.ok());
}

TEST(ClassifyTest, PropositionalRequiresAridityZeroStates) {
  ServiceBuilder b("P");
  b.State("s", 1);
  b.Database("r", 1);
  b.Page("HP");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok());
  EXPECT_FALSE(CheckPropositionalService(*ws).ok());
}

TEST(ClassifyTest, FullyPropositionalService) {
  ServiceBuilder b("P");
  b.State("s", 0);
  b.Input("go", 0);
  b.Page("HP").UseInput("go").Insert("s", "go").Target("P2", "go & s");
  b.Page("P2");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok());
  ServiceClassification c = ClassifyService(*ws);
  EXPECT_TRUE(c.input_bounded) << c.input_bounded_diag;
  EXPECT_TRUE(c.propositional) << c.propositional_diag;
  EXPECT_TRUE(c.fully_propositional) << c.fully_propositional_diag;
}

TEST(ClassifyTest, DatabaseAtomBlocksFullyPropositional) {
  ServiceBuilder b("P");
  b.State("s", 0);
  b.Database("d", 0);
  b.Page("HP").Insert("s", "d");
  b.Home("HP").Error("E");
  auto ws = b.Build();
  ASSERT_TRUE(ws.ok());
  EXPECT_TRUE(CheckPropositionalService(*ws).ok());
  EXPECT_FALSE(CheckFullyPropositionalService(*ws).ok());
}

}  // namespace
}  // namespace wsv
