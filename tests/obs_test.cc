// Tests for the observability subsystem (src/obs/): counter aggregation
// across threads, histogram percentiles, span nesting and Chrome-trace
// export, and — the property the sharded registry is designed around —
// identical work-counter totals between serial and parallel runs of the
// same verification.

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "verify/parallel.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// This suite runs in two build modes: the normal build, and (via the
// whole-tree -DWSV_OBS_DISABLED=ON configuration) one where every
// instrumentation macro — here AND in the library — compiles to a
// no-op. Tests of the macros and of the library's instrumentation skip
// themselves in the latter; tests of the direct registry API run in
// both.
#if defined(WSV_OBS_DISABLED)
constexpr bool kInstrumented = false;
#else
constexpr bool kInstrumented = true;
#endif

#define SKIP_IF_NOT_INSTRUMENTED()                                \
  do {                                                            \
    if (!kInstrumented) {                                         \
      GTEST_SKIP() << "instrumentation macros compiled out";      \
    }                                                             \
  } while (0)

// --- Registry: counters. ------------------------------------------------

TEST(MetricsRegistry, CounterBasics) {
  obs::ResetMetrics();
  obs::Counter& c = obs::GetCounter("obs_test/basic");
  c.Increment();
  c.Add(41);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_EQ(snap.CounterValue("obs_test/basic"), 42u);
  EXPECT_EQ(snap.CounterValue("obs_test/never_bumped"), 0u);
}

TEST(MetricsRegistry, SameNameSameCounter) {
  obs::ResetMetrics();
  obs::GetCounter("obs_test/shared").Add(3);
  obs::GetCounter("obs_test/shared").Add(4);
  EXPECT_EQ(obs::SnapshotMetrics().CounterValue("obs_test/shared"), 7u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsNames) {
  obs::GetCounter("obs_test/reset_me").Add(99);
  obs::ResetMetrics();
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_EQ(snap.CounterValue("obs_test/reset_me"), 0u);
  EXPECT_TRUE(snap.counters.count("obs_test/reset_me"));
}

// The core aggregation property: per-thread shards plus retired folds
// add up to the exact total, whether the writers are alive or joined at
// snapshot time.
TEST(MetricsRegistry, CounterAggregationAcrossThreads) {
  obs::ResetMetrics();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        obs::Counter& c = obs::GetCounter("obs_test/mt_total");
        for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
        WSV_COUNT("obs_test/mt_macro", 5);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // All writer threads have exited: their shards were folded into the
  // retired totals, which the snapshot must still see.
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_EQ(snap.CounterValue("obs_test/mt_total"), kThreads * kPerThread);
  EXPECT_EQ(snap.CounterValue("obs_test/mt_macro"),
            kInstrumented ? uint64_t{kThreads} * 5 : 0u);
}

TEST(MetricsRegistry, SnapshotWhileWritersLive) {
  obs::ResetMetrics();
  obs::GetCounter("obs_test/live").Add(1);  // register on this thread too
  std::thread writer([] {
    obs::Counter& c = obs::GetCounter("obs_test/live");
    for (int i = 0; i < 5000; ++i) c.Increment();
  });
  // Snapshots racing the writer must be well-formed and monotonic.
  uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t v = obs::SnapshotMetrics().CounterValue("obs_test/live");
    EXPECT_GE(v, last);
    last = v;
  }
  writer.join();
  EXPECT_EQ(obs::SnapshotMetrics().CounterValue("obs_test/live"), 5001u);
}

// --- Registry: histograms. ----------------------------------------------

TEST(MetricsRegistry, HistogramCountSumMean) {
  obs::ResetMetrics();
  obs::Histogram& h = obs::GetHistogram("obs_test/hist");
  h.Record(0);
  h.Record(10);
  h.Record(90);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  const obs::HistogramSnapshot& hs = snap.histograms.at("obs_test/hist");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 100u);
  EXPECT_DOUBLE_EQ(hs.Mean(), 100.0 / 3.0);
}

TEST(MetricsRegistry, HistogramPercentiles) {
  obs::ResetMetrics();
  obs::Histogram& h = obs::GetHistogram("obs_test/pct");
  // 90 values near 1us and 10 near 1ms: p50 falls in the 1000-bucket
  // (upper bound 1023 = 2^10 - 1), p99 in the 1000000-bucket
  // (upper bound 1048575 = 2^20 - 1).
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1000000);
  const obs::HistogramSnapshot hs =
      obs::SnapshotMetrics().histograms.at("obs_test/pct");
  EXPECT_EQ(hs.count, 100u);
  EXPECT_EQ(hs.Percentile(0.5), 1023u);
  EXPECT_EQ(hs.Percentile(0.9), 1023u);
  EXPECT_EQ(hs.Percentile(0.99), 1048575u);
  EXPECT_EQ(hs.Percentile(1.0), 1048575u);
}

TEST(MetricsRegistry, HistogramZeroOnlyBucket) {
  obs::ResetMetrics();
  obs::Histogram& h = obs::GetHistogram("obs_test/zeros");
  h.Record(0);
  const obs::HistogramSnapshot hs =
      obs::SnapshotMetrics().histograms.at("obs_test/zeros");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.sum, 0u);
  EXPECT_EQ(hs.Percentile(0.5), 0u);
}

TEST(MetricsRegistry, HistogramAggregationAcrossThreads) {
  SKIP_IF_NOT_INSTRUMENTED();
  obs::ResetMetrics();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) WSV_HIST("obs_test/mt_hist", 7);
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::HistogramSnapshot hs =
      obs::SnapshotMetrics().histograms.at("obs_test/mt_hist");
  EXPECT_EQ(hs.count, 400u);
  EXPECT_EQ(hs.sum, 2800u);
}

TEST(MetricsRegistry, ScopedTimerRecordsPlausibleDuration) {
  SKIP_IF_NOT_INSTRUMENTED();
  obs::ResetMetrics();
  {
    WSV_TIMER("obs_test/timer_ns");
  }
  const obs::HistogramSnapshot hs =
      obs::SnapshotMetrics().histograms.at("obs_test/timer_ns");
  EXPECT_EQ(hs.count, 1u);
  // A steady clock cannot run backwards; anything non-huge is fine.
  EXPECT_LT(hs.sum, uint64_t{60} * 1000 * 1000 * 1000);
}

// --- Spans and trace export. --------------------------------------------

TEST(Trace, SpanNestingAndCollect) {
  SKIP_IF_NOT_INSTRUMENTED();
  obs::ResetMetrics();
  obs::StartTracing();
  {
    WSV_SPAN("obs_test_outer");
    {
      WSV_SPAN("obs_test_inner");
    }
  }
  obs::StopTracing();
  std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer starts first, and encloses inner.
  EXPECT_EQ(events[0].name, "obs_test_outer");
  EXPECT_EQ(events[1].name, "obs_test_inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].end_ns, events[1].end_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Spans always feed the phase-table histograms too.
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_EQ(snap.histograms.at("span/obs_test_outer").count, 1u);
  EXPECT_EQ(snap.histograms.at("span/obs_test_inner").count, 1u);
}

TEST(Trace, ThreadsGetDistinctTids) {
  // Uses ScopedSpan directly (not WSV_SPAN) so this runs in the
  // WSV_OBS_DISABLED configuration too.
  obs::StartTracing();
  {
    obs::ScopedSpan main_span("obs_test_main_thread", nullptr);
    std::thread t([] {
      obs::ScopedSpan worker_span("obs_test_worker_thread", nullptr);
    });
    t.join();
  }
  obs::StopTracing();
  std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Trace, DisabledRecordsNothing) {
  obs::StartTracing();
  obs::StopTracing();
  {
    WSV_SPAN("obs_test_after_stop");
  }
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
  // StartTracing clears the previous session's events.
  obs::StartTracing();
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
  obs::StopTracing();
}

TEST(Trace, ChromeExportRoundTrip) {
  obs::StartTracing();
  obs::RecordTraceEvent("alpha \"quoted\"", 1000, 5000);
  obs::RecordTraceEvent("beta", 2000, 3000);
  obs::StopTracing();
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  const std::string json = out.str();
  // Structural spot checks (tools/check_trace.py does the full parse).
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("alpha \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  // Timestamps are relative to the earliest span: alpha starts at 0us
  // and lasts 4us; beta starts 1us in.
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":4.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000,\"dur\":1.000"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

// --- Report formatting. -------------------------------------------------

TEST(Report, FormatDuration) {
  EXPECT_EQ(obs::FormatDurationNs(412), "412ns");
  EXPECT_EQ(obs::FormatDurationNs(3100), "3.1us");
  EXPECT_EQ(obs::FormatDurationNs(24700000), "24.7ms");
  EXPECT_EQ(obs::FormatDurationNs(1300000000), "1.30s");
}

TEST(Report, StatsTableAndJson) {
  obs::ResetMetrics();
  obs::GetCounter("ltl/leaf_memo_hits").Add(3);
  obs::GetCounter("ltl/leaf_memo_misses").Add(1);
  obs::GetHistogram("span/obs_test_phase").Record(1000);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  std::string table = obs::FormatStatsTable(snap);
  EXPECT_NE(table.find("obs_test_phase"), std::string::npos);
  EXPECT_NE(table.find("ltl/leaf_memo_hits"), std::string::npos);
  EXPECT_NE(table.find("fo-leaf memo hit rate"), std::string::npos);
  EXPECT_NE(table.find("75.0%"), std::string::npos);
  std::string json = obs::StatsToJson(snap);
  EXPECT_NE(json.find("\"ltl/leaf_memo_hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"fo_leaf_memo_hit_rate\""), std::string::npos);
  EXPECT_DOUBLE_EQ(obs::LeafMemoHitRate(snap), 0.75);
}

TEST(Report, LeafMemoRateUndefinedWithoutLookups) {
  obs::ResetMetrics();
  EXPECT_LT(obs::LeafMemoHitRate(obs::SnapshotMetrics()), 0.0);
}

// --- Serial vs parallel counter equality on gallery services. -----------

// The counters that measure *work done* (not scheduling) must agree
// between --jobs 1 and --jobs 4: same databases, same graph, same
// valuations, same products. Pool/* counters are excluded by design
// (jobs=1 runs the serial verifier with no pool at all).
const char* const kWorkCounters[] = {
    "verify/databases",          "db_enum/instances_enumerated",
    "config_graph/nodes",        "config_graph/nodes_expanded",
    "config_graph/edges",        "config_graph/node_dedup_hits",
    "ltl/valuations_checked",    "ltl/products_built",
    "ltl/product_states",        "automata/gba_states",
    "automata/buchi_states",     "automata/fo_leaves",
};

std::map<std::string, uint64_t> WorkCounters(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, uint64_t> out;
  for (const char* name : kWorkCounters) {
    out[name] = snap.CounterValue(name);
  }
  return out;
}

// Database-enumeration sweep on the login service: every database within
// the bound is swept at both job counts (the property holds, so there is
// no early stop and the totals must coincide exactly — including the
// FO-leaf memo, which is per-database on this path).
TEST(CounterEquality, LoginEnumerationSweep) {
  WebService service = std::move(BuildLoginService()).value();
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  auto prop = ParseTemporalProperty("G(!error(\"no such page\"))",
                                    &service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();

  obs::ResetMetrics();
  {
    ParallelLtlVerifier serial(&service, options, 1);
    auto r = serial.Verify(*prop);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  obs::MetricsSnapshot s1 = obs::SnapshotMetrics();
  auto work1 = WorkCounters(s1);
  uint64_t memo1 = s1.CounterValue("ltl/leaf_memo_hits") +
                   s1.CounterValue("ltl/leaf_memo_misses");

  obs::ResetMetrics();
  {
    ParallelLtlVerifier parallel(&service, options, 4);
    auto r = parallel.Verify(*prop);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  obs::MetricsSnapshot s4 = obs::SnapshotMetrics();
  auto work4 = WorkCounters(s4);
  uint64_t memo4 = s4.CounterValue("ltl/leaf_memo_hits") +
                   s4.CounterValue("ltl/leaf_memo_misses");

  EXPECT_EQ(work1, work4);
  EXPECT_EQ(memo1, memo4);
  // Trivial equality (all zeros) only counts in the disabled build.
  if (kInstrumented) {
    EXPECT_GT(work1["verify/databases"], 0u);
    EXPECT_GT(work1["config_graph/nodes"], 0u);
  }
}

// The third gallery service (the paper's clear-loop login variant):
// same equality on the fixed-database path with default closure
// candidates.
TEST(CounterEquality, ClearLoopService) {
  WebService service = std::move(BuildPaperClearLoopService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  auto prop = ParseTemporalProperty("G(!CP | logged_in)", &service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();

  obs::ResetMetrics();
  {
    ParallelLtlVerifier serial(&service, options, 1);
    auto r = serial.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  auto work1 = WorkCounters(obs::SnapshotMetrics());

  obs::ResetMetrics();
  {
    ParallelLtlVerifier parallel(&service, options, 4);
    auto r = parallel.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  auto work4 = WorkCounters(obs::SnapshotMetrics());

  EXPECT_EQ(work1, work4);
  if (kInstrumented) {
    EXPECT_GT(work1["config_graph/nodes"], 0u);
    EXPECT_GT(work1["ltl/product_states"], 0u);
  }
}

// Valuation sweep on the e-commerce service (pay-before-ship holds):
// jobs=4 shards the valuation range, so per-shard state *splits* may
// differ — the memo hit/miss split, and (since each shard owns its
// valuation-class table) how many first-of-class products get built —
// but total memo lookups, the class-accounting identity, and every
// other work counter must still match the serial sweep.
//
// Pinned to the eager pipeline: on-the-fly sweeps each expand their own
// lazy configuration graph, so config_graph/* totals legitimately vary
// with the shard cut. The on-the-fly analogues (verdict equivalence and
// product-state bounds across jobs) live in otf_test.cc.
TEST(CounterEquality, EcommerceValuationSweep) {
  setenv("WSV_DISABLE_ONTHEFLY", "1", 1);
  struct EnvGuard {
    ~EnvGuard() { unsetenv("WSV_DISABLE_ONTHEFLY"); }
  } env_guard;
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  auto prop = ParseTemporalProperty(
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))",
      &service.vocab());
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();

  obs::ResetMetrics();
  {
    ParallelLtlVerifier serial(&service, options, 1);
    auto r = serial.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  obs::MetricsSnapshot s1 = obs::SnapshotMetrics();
  auto work1 = WorkCounters(s1);
  uint64_t memo1 = s1.CounterValue("ltl/leaf_memo_hits") +
                   s1.CounterValue("ltl/leaf_memo_misses");

  obs::ResetMetrics();
  {
    ParallelLtlVerifier parallel(&service, options, 4);
    auto r = parallel.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->holds);
  }
  obs::MetricsSnapshot s4 = obs::SnapshotMetrics();
  auto work4 = WorkCounters(s4);
  uint64_t memo4 = s4.CounterValue("ltl/leaf_memo_hits") +
                   s4.CounterValue("ltl/leaf_memo_misses");

  // Products are built once per valuation class *per shard*: the shard
  // cut can only add first-of-class builds, never remove one.
  auto drop_product_split = [](std::map<std::string, uint64_t> work) {
    work.erase("ltl/products_built");
    work.erase("ltl/product_states");
    return work;
  };
  EXPECT_EQ(drop_product_split(work1), drop_product_split(work4));
  EXPECT_LE(work1["ltl/products_built"], work4["ltl/products_built"]);
  EXPECT_EQ(memo1, memo4);
  for (const obs::MetricsSnapshot* s : {&s1, &s4}) {
    EXPECT_EQ(s->CounterValue("ltl/valuation_classes") +
                  s->CounterValue("ltl/class_hits"),
              s->CounterValue("ltl/valuations_checked"));
  }
  if (kInstrumented) {
    EXPECT_GT(work1["ltl/valuations_checked"], 1u);
    EXPECT_GT(memo1, 0u);
    // The collapse must actually bite on this property: fewer serial
    // products than valuations.
    EXPECT_LT(work1["ltl/products_built"],
              work1["ltl/valuations_checked"]);
  }
}

}  // namespace
}  // namespace wsv
