// Valuation equivalence-class collapsing (verify/ltl_verifier.cc).
//
// The sweep may skip the product build + emptiness run for a valuation
// whose FO leaves all resolve to previously seen truth columns — the
// products are identical, so the verdict is class-invariant. These
// tests pin the load-bearing properties: the collapsed sweep reports
// exactly the naive sweep's verdict and lowest-index counterexample on
// the gallery services (WSV_DISABLE_CLASS_COLLAPSE forces the naive
// sweep), the class accounting adds up, shard splits at higher job
// counts keep the totals consistent, and the db_enum fresh-value
// symmetry pruning never drops an orbit.

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "obs/metrics.h"
#include "verify/db_enum.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

#if defined(WSV_OBS_DISABLED)
constexpr bool kInstrumented = false;
#else
constexpr bool kInstrumented = true;
#endif

// Forces the naive one-product-per-valuation sweep for its lifetime.
// Only flipped between verifications (never while worker threads run),
// so the getenv in ClassCollapseEnabled is race-free.
class ScopedNaiveSweep {
 public:
  ScopedNaiveSweep() { setenv("WSV_DISABLE_CLASS_COLLAPSE", "1", 1); }
  ~ScopedNaiveSweep() { unsetenv("WSV_DISABLE_CLASS_COLLAPSE"); }
};

struct SweepRun {
  bool holds = true;
  std::string cex;  // CounterExample::ToString(), empty when none
  uint64_t valuations = 0;
  uint64_t classes = 0;
  uint64_t class_hits = 0;
  uint64_t products_built = 0;
  uint64_t products_skipped = 0;
  uint64_t product_states = 0;
  uint64_t databases = 0;
};

// Runs `prop` on one database (or over the enumeration when `db` is
// null) at the given job count and snapshots the sweep counters.
SweepRun RunSweep(const WebService& service, const LtlVerifyOptions& options,
             const std::string& prop, const Instance* db, int jobs) {
  auto p = ParseTemporalProperty(prop, &service.vocab());
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  obs::ResetMetrics();
  ParallelLtlVerifier verifier(&service, options, jobs);
  auto r = db ? verifier.VerifyOnDatabase(*p, *db) : verifier.Verify(*p);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  SweepRun out;
  out.holds = r->holds;
  if (r->counterexample.has_value()) out.cex = r->counterexample->ToString();
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  out.valuations = snap.CounterValue("ltl/valuations_checked");
  out.classes = snap.CounterValue("ltl/valuation_classes");
  out.class_hits = snap.CounterValue("ltl/class_hits");
  out.products_built = snap.CounterValue("ltl/products_built");
  out.products_skipped = snap.CounterValue("ltl/products_skipped");
  out.product_states = snap.CounterValue("ltl/product_states");
  out.databases = r->databases_checked;
  return out;
}

// Collapsed and naive sweeps must agree on the verdict and on the
// lowest-index witness, and the collapsed run's class accounting must
// cover every checked valuation exactly once.
void ExpectCollapseTransparent(const SweepRun& collapsed,
                               const SweepRun& naive) {
  EXPECT_EQ(collapsed.holds, naive.holds);
  EXPECT_EQ(collapsed.cex, naive.cex);
  EXPECT_EQ(collapsed.valuations, naive.valuations);
  EXPECT_EQ(collapsed.databases, naive.databases);
  if (!kInstrumented) return;
  EXPECT_EQ(collapsed.classes + collapsed.class_hits, collapsed.valuations);
  EXPECT_EQ(collapsed.products_built, collapsed.classes);
  EXPECT_EQ(collapsed.products_skipped, collapsed.class_hits);
  // The naive sweep builds one product per valuation and no classes.
  EXPECT_EQ(naive.classes, 0u);
  EXPECT_EQ(naive.class_hits, 0u);
  EXPECT_EQ(naive.products_built, naive.valuations);
}

// --- Gallery service 1: login. ------------------------------------------

class LoginCollapseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
    options_.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  }

  WebService service_;
  Instance db_;
  LtlVerifyOptions options_;
};

TEST_F(LoginCollapseTest, ViolatedClosurePropertyMatchesNaive) {
  const std::string prop = "forall m . G(!error(m))";
  SweepRun collapsed = RunSweep(service_, options_, prop, &db_, 1);
  SweepRun naive;
  {
    ScopedNaiveSweep naive_mode;
    naive = RunSweep(service_, options_, prop, &db_, 1);
  }
  ExpectCollapseTransparent(collapsed, naive);
  // The known witness: the faithfulness check must keep rejecting the
  // spurious pool valuations on cached violating classes too.
  ASSERT_FALSE(collapsed.holds);
  EXPECT_NE(collapsed.cex.find("m=failed login"), std::string::npos)
      << collapsed.cex;
}

TEST_F(LoginCollapseTest, HoldingClosurePropertyCollapses) {
  // Holds: errors range over messages, never over the pool values the
  // closure variable sweeps. Every valuation resolves to the same leaf
  // columns except the ones binding m to values a run can produce.
  const std::string prop = "forall m . G(!CP | logged_in)";
  SweepRun collapsed = RunSweep(service_, options_, prop, &db_, 1);
  SweepRun naive;
  {
    ScopedNaiveSweep naive_mode;
    naive = RunSweep(service_, options_, prop, &db_, 1);
  }
  ExpectCollapseTransparent(collapsed, naive);
  EXPECT_TRUE(collapsed.holds);
  if (kInstrumented) {
    // The property ignores m entirely: one class regardless of the
    // candidate count.
    EXPECT_EQ(collapsed.classes, 1u);
    EXPECT_GT(collapsed.valuations, 1u);
  }
}

// --- Gallery service 2: e-commerce (the paper's running example). -------

TEST(EcommerceCollapseTest, PayBeforeShipMatchesNaive) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  const std::string prop =
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))";

  SweepRun collapsed = RunSweep(*ws, options, prop, &db, 1);
  SweepRun naive;
  {
    ScopedNaiveSweep naive_mode;
    naive = RunSweep(*ws, options, prop, &db, 1);
  }
  ExpectCollapseTransparent(collapsed, naive);
  EXPECT_TRUE(collapsed.holds);
  if (kInstrumented) {
    // 9 valuations, but only the (p1, 100) binding ever flips a leaf:
    // the collapse is what the PR is for.
    EXPECT_EQ(collapsed.valuations, 9u);
    EXPECT_LT(collapsed.products_built, naive.products_built);
    EXPECT_LT(collapsed.product_states, naive.product_states);
  }
}

TEST(EcommerceCollapseTest, ViolatedEventualityMatchesNaive) {
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  const std::string prop = "G(!PIP) | F(PIP & F(CC))";

  SweepRun collapsed = RunSweep(*ws, options, prop, &db, 1);
  SweepRun naive;
  {
    ScopedNaiveSweep naive_mode;
    naive = RunSweep(*ws, options, prop, &db, 1);
  }
  ExpectCollapseTransparent(collapsed, naive);
  EXPECT_FALSE(collapsed.holds);
}

// --- Gallery service 3: the paper's clear-loop login variant. -----------

TEST(ClearLoopCollapseTest, ClosureSweepMatchesNaive) {
  auto ws = BuildPaperClearLoopService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  for (const char* prop : {"forall m . G(!error(m))", "G(!CP | logged_in)"}) {
    SweepRun collapsed = RunSweep(*ws, options, prop, &db, 1);
    SweepRun naive;
    {
      ScopedNaiveSweep naive_mode;
      naive = RunSweep(*ws, options, prop, &db, 1);
    }
    ExpectCollapseTransparent(collapsed, naive);
  }
}

// --- jobs=1 vs jobs=4. --------------------------------------------------

TEST(CollapseJobsTest, EnumerationSweepCountersMatchAcrossJobs) {
  // On the database-enumeration path every task sweeps its database's
  // whole valuation range in one call, so the class tables see the same
  // index sets at any job count and even the products-built total is
  // exact — including the class accounting identity per side.
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  const std::string prop = "G(!error(\"no such page\"))";

  SweepRun jobs1 = RunSweep(*ws, options, prop, nullptr, 1);
  SweepRun jobs4 = RunSweep(*ws, options, prop, nullptr, 4);
  EXPECT_EQ(jobs1.holds, jobs4.holds);
  EXPECT_TRUE(jobs1.holds);
  EXPECT_EQ(jobs1.databases, jobs4.databases);
  EXPECT_EQ(jobs1.valuations, jobs4.valuations);
  EXPECT_EQ(jobs1.classes, jobs4.classes);
  EXPECT_EQ(jobs1.class_hits, jobs4.class_hits);
  EXPECT_EQ(jobs1.products_built, jobs4.products_built);
  EXPECT_EQ(jobs1.product_states, jobs4.product_states);
  if (kInstrumented) {
    EXPECT_EQ(jobs4.classes + jobs4.class_hits, jobs4.valuations);
    EXPECT_GT(jobs1.valuations, 0u);
  }
}

TEST(CollapseJobsTest, ChunkedSweepVerdictAndAccountingMatchAcrossJobs) {
  // On the fixed-database path the range is sharded, each shard owning
  // a class table: the split of products across shards may differ from
  // the serial sweep (it can only grow), but verdict, witness, total
  // valuations, and the per-side accounting identity all hold.
  auto ws = BuildEcommerceService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  const std::string prop =
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))";

  SweepRun jobs1 = RunSweep(*ws, options, prop, &db, 1);
  SweepRun jobs4 = RunSweep(*ws, options, prop, &db, 4);
  EXPECT_EQ(jobs1.holds, jobs4.holds);
  EXPECT_EQ(jobs1.cex, jobs4.cex);
  EXPECT_EQ(jobs1.valuations, jobs4.valuations);
  EXPECT_LE(jobs1.products_built, jobs4.products_built);
  if (kInstrumented) {
    EXPECT_EQ(jobs1.classes + jobs1.class_hits, jobs1.valuations);
    EXPECT_EQ(jobs4.classes + jobs4.class_hits, jobs4.valuations);
  }
}

// --- db_enum fresh-value symmetry pruning. ------------------------------

// Applies a permutation of the fresh values to an instance (the test's
// own relabeling, independent of the enumerator's).
Instance Relabel(const Instance& in, const std::map<Value, Value>& pi) {
  auto map_value = [&](Value v) {
    auto it = pi.find(v);
    return it == pi.end() ? v : it->second;
  };
  Instance out;
  for (Value v : in.domain()) out.AddDomainValue(v);
  for (const auto& [name, rel] : in.relations()) {
    (void)out.EnsureRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      Tuple mapped = t;
      for (Value& v : mapped) v = map_value(v);
      out.MutableRelation(name)->Insert(mapped);
    }
  }
  for (const auto& [name, v] : in.constants()) {
    out.SetConstant(name, map_value(v));
  }
  return out;
}

TEST(DbEnumSymmetryTest, VisitsOneRepresentativePerOrbit) {
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  DbEnumOptions options;
  options.fresh_values = 2;
  options.max_tuples_per_relation = 1;

  obs::ResetMetrics();
  std::vector<Instance> visited;
  auto r = EnumerateDatabases(*ws, options,
                              [&](const Instance& db) -> StatusOr<bool> {
                                visited.push_back(db);
                                return false;
                              });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(visited.empty());
  if (kInstrumented) {
    EXPECT_GT(obs::SnapshotMetrics().CounterValue("db_enum/symmetry_pruned"),
              0u);
  }

  // No two visited instances are related by the d0<->d1 swap, and the
  // visited set is closed under canonicalization: each instance's swap
  // image is either itself or absent.
  const std::map<Value, Value> swap = {{V("d0"), V("d1")},
                                       {V("d1"), V("d0")}};
  std::set<std::string> seen;
  for (const Instance& db : visited) seen.insert(db.ToString());
  EXPECT_EQ(seen.size(), visited.size());  // no duplicates either
  for (const Instance& db : visited) {
    Instance swapped = Relabel(db, swap);
    if (swapped == db) continue;
    EXPECT_EQ(seen.count(swapped.ToString()), 0u)
        << "isomorphic pair visited:\n"
        << db.ToString();
  }
}

TEST(DbEnumSymmetryTest, VerdictsUnchangedByPruning) {
  // Soundness smoke test: with two interchangeable fresh values the
  // pruned enumeration must still decide both a holding and a violated
  // property exactly as before, at any job count.
  auto ws = BuildLoginService();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  LtlVerifyOptions options;
  options.db.fresh_values = 2;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};

  SweepRun holding1 = RunSweep(*ws, options, "G(!error(\"no such page\"))",
                          nullptr, 1);
  SweepRun holding4 = RunSweep(*ws, options, "G(!error(\"no such page\"))",
                          nullptr, 4);
  EXPECT_TRUE(holding1.holds);
  EXPECT_TRUE(holding4.holds);
  EXPECT_EQ(holding1.databases, holding4.databases);

  SweepRun violated1 = RunSweep(*ws, options, "G(!CP)", nullptr, 1);
  SweepRun violated4 = RunSweep(*ws, options, "G(!CP)", nullptr, 4);
  EXPECT_FALSE(violated1.holds);
  EXPECT_FALSE(violated4.holds);
  EXPECT_EQ(violated1.cex, violated4.cex);
  EXPECT_EQ(violated1.databases, violated4.databases);
}

}  // namespace
}  // namespace wsv
