// Cross-validation tests: independent code paths of the library must
// agree with each other on the same questions.

#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "reductions/qbf.h"
#include "runtime/interpreter.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/transform.h"
#include "ws/builder.h"
#include "ws/data_parser.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// --- Error-freeness: the direct reachability check and the Lemma A.5
// transformation + LTL route must agree — across QBF-generated services
// with known error status (Lemma A.6 gives ground truth via the
// evaluator, a third independent path).
class QbfThreeWayTest : public ::testing::TestWithParam<int> {};

TEST_P(QbfThreeWayTest, DirectTransformAndTruthAgree) {
  std::vector<QbfPtr> formulas{
      Qbf::Exists("x", Qbf::Var("x")),
      Qbf::Forall("x", Qbf::Var("x")),
      Qbf::Exists("x", Qbf::Forall("y", Qbf::Or(Qbf::Not(Qbf::Var("x")),
                                                Qbf::Var("y")))),
      Qbf::Forall("x", Qbf::Exists("y", Qbf::And(Qbf::Var("y"),
                                                 Qbf::Not(Qbf::Var("x"))))),
  };
  const QbfPtr& f = formulas[static_cast<size_t>(GetParam())];
  bool truth = *EvaluateQbf(*f);
  WebService service = std::move(BuildQbfService(*f)).value();

  // Route 1: direct error search.
  ErrorFreeOptions ef_options;
  ef_options.db.fresh_values = 0;
  ef_options.db.max_tuples_per_relation = 2;
  auto direct = CheckErrorFree(service, ef_options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Route 2: Lemma A.5 transformation + LTL verification of G !trap.
  auto tr = TransformErrorFree(service);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  options.db.fresh_values = 0;
  options.db.max_tuples_per_relation = 2;
  LtlVerifier verifier(&tr->service, options);
  auto via_transform = verifier.Verify(tr->property);
  ASSERT_TRUE(via_transform.ok()) << via_transform.status().ToString();

  EXPECT_EQ(direct->error_free, via_transform->holds) << f->ToString();
  // Route 3: Lemma A.6 ground truth.
  EXPECT_EQ(direct->error_free, !truth) << f->ToString();
}

INSTANTIATE_TEST_SUITE_P(Formulas, QbfThreeWayTest, ::testing::Range(0, 4));

// --- Lemma A.10: the simple service must produce the same page sequence
// as the original under corresponding user scripts (page propositions
// track the page one step behind the transition rules).
TEST(SimpleEquivalenceTest, PagePropositionsTrackOriginalRun) {
  WebService original = std::move(BuildLoginService()).value();
  SimpleTransform tr = std::move(TransformToSimple(original)).value();

  // Original run: login succeeds, then logout.
  Instance db = LoginDatabase();
  std::vector<UserChoice> script;
  {
    UserChoice login;
    login.constant_values["name"] = V("alice");
    login.constant_values["password"] = V("pw");
    login.relation_choices["button"] = Tuple{V("login")};
    script.push_back(login);
    UserChoice logout;
    logout.relation_choices["button"] = Tuple{V("logout")};
    script.push_back(logout);
  }
  ScriptedInputProvider provider(script);
  Interpreter interp(&original, &db);
  auto run = interp.Run(provider, 3);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->page_sequence,
            (std::vector<std::string>{"HP", "CP", "BYE"}));

  // Simple run: same database plus the constants, same button picks.
  Instance simple_db = LoginDatabase();
  simple_db.SetConstant("name", V("alice"));
  simple_db.SetConstant("password", V("pw"));
  std::vector<UserChoice> simple_script;
  for (UserChoice c : script) {
    c.constant_values.clear();  // constants are in the database now
    simple_script.push_back(c);
  }
  ScriptedInputProvider simple_provider(simple_script);
  Interpreter simple_interp(&tr.service, &simple_db);
  auto simple_run = simple_interp.Run(simple_provider, 3);
  ASSERT_TRUE(simple_run.ok()) << simple_run.status().ToString();
  ASSERT_FALSE(simple_run->reached_error) << simple_run->error_reason;

  // At step i the simple service's page propositions encode V_i: no
  // proposition set means the home page.
  for (size_t i = 0; i < 3; ++i) {
    const TraceStep& step = simple_run->trace[i];
    std::string current = original.home_page();
    for (const auto& [page, prop] : tr.page_prop) {
      const Relation* rel = step.state.FindRelation(prop);
      if (rel != nullptr && rel->AsBool()) current = page;
    }
    EXPECT_EQ(current, run->page_sequence[i]) << "step " << i;
  }
}

// --- Lossless input (Theorem 3.9's extension (iii)). -------------------
TEST(LosslessInputTest, PrevAccumulatesAllInputs) {
  ServiceBuilder b("Lossless");
  b.Database("D", 1);
  b.Input("I", 1);
  b.State("seen_two", 0);
  b.Page("P")
      .Options("I(x)", "D(x)")
      // Two distinct values visible in prev at once: only possible under
      // lossless semantics.
      .Insert("seen_two",
              "exists x . prev.I(x) & (exists y . prev.I(y) & x != y)");
  b.Home("P").Error("E");
  WebService service = std::move(b.Build()).value();
  Instance db;
  ASSERT_TRUE(db.AddFact("D", {V("a")}).ok());
  ASSERT_TRUE(db.AddFact("D", {V("b")}).ok());

  auto run_with = [&](bool lossless) {
    Stepper stepper(&service, &db);
    stepper.SetLosslessInput(lossless);
    Config c = stepper.InitialConfig();
    for (const char* pick : {"a", "b", "a"}) {
      UserChoice choice;
      choice.relation_choices["I"] = Tuple{V(pick)};
      auto out = stepper.Step(c, choice);
      EXPECT_TRUE(out.ok());
      c = out->next;
    }
    return c.state.FindRelation("seen_two")->AsBool();
  };
  EXPECT_FALSE(run_with(false));  // standard: prev holds one tuple
  EXPECT_TRUE(run_with(true));    // lossless: prev accumulates {a, b}
}

// --- Data files round-trip. --------------------------------------------
TEST(DataParserTest, RoundTrip) {
  Instance db = EcommerceDatabase();
  std::string text = DataFileToString(db);
  WebService service = std::move(BuildEcommerceService()).value();
  auto parsed = ParseDataFile(text, &service.vocab());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const auto& [name, rel] : db.relations()) {
    const Relation* got = parsed->FindRelation(name);
    ASSERT_NE(got, nullptr) << name;
    EXPECT_TRUE(*got == rel) << name;
  }
}

TEST(DataParserTest, ChecksVocabulary) {
  WebService service = std::move(BuildLoginService()).value();
  EXPECT_FALSE(ParseDataFile("nosuch(a).", &service.vocab()).ok());
  EXPECT_FALSE(ParseDataFile("user(a).", &service.vocab()).ok());  // arity
  EXPECT_FALSE(
      ParseDataFile("const name = a.", &service.vocab()).ok());  // input
  EXPECT_TRUE(ParseDataFile("user(a, b).", &service.vocab()).ok());
  // Unchecked parsing accepts anything well-formed.
  EXPECT_TRUE(ParseDataFile("anything(x, \"y z\", 42).", nullptr).ok());
  EXPECT_FALSE(ParseDataFile("missing_dot(a)", nullptr).ok());
}

// --- Verifier counterexamples re-validate under run semantics. ----------
TEST(CounterexampleValidityTest, EveryCounterexampleReEvaluatesFalse) {
  WebService service = std::move(BuildLoginService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  LtlVerifier verifier(&service, options);
  const char* violated[] = {
      "G(!MP)",
      "G(!CP)",
      "forall m . G(!error(m))",
      "G(HP)",
      "F(CP)",
  };
  for (const char* text : violated) {
    SCOPED_TRACE(text);
    auto prop = ParseTemporalProperty(text, &service.vocab());
    ASSERT_TRUE(prop.ok());
    auto r = verifier.VerifyOnDatabase(*prop, db);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->holds);
    ASSERT_TRUE(r->counterexample.has_value());
    // Independent re-evaluation through the lasso semantics, restricted
    // to the counterexample's valuation.
    auto again = EvaluateLtlOnLassoWithValuation(
        *prop->formula, r->counterexample->run, r->counterexample->database,
        service, r->counterexample->valuation);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_FALSE(*again);
  }
}

}  // namespace
}  // namespace wsv
