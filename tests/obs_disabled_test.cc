// Compiled with -DWSV_OBS_DISABLED (see tests/CMakeLists.txt): every
// instrumentation macro in THIS translation unit must be a no-op, while
// the registry API itself stays linkable (the wsv library is built with
// observability on — only the macro call sites compile away).

#ifndef WSV_OBS_DISABLED
#error "this test must be compiled with WSV_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv {
namespace {

TEST(ObsDisabled, MacrosCompileToNothing) {
  // Each macro must be usable as a plain statement, including inside an
  // unbraced if — i.e. expand to a single well-formed statement.
  if (true) WSV_COUNT("obs_disabled_test/count", 3);
  if (true) WSV_COUNT1("obs_disabled_test/count1");
  if (true) WSV_HIST("obs_disabled_test/hist", 42);
  {
    WSV_TIMER("obs_disabled_test/timer");
    WSV_SPAN("obs_disabled_test/span");
  }
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  // None of the names above were registered: the macros never touched
  // the registry.
  EXPECT_EQ(snap.counters.count("obs_disabled_test/count"), 0u);
  EXPECT_EQ(snap.counters.count("obs_disabled_test/count1"), 0u);
  EXPECT_EQ(snap.histograms.count("obs_disabled_test/hist"), 0u);
  EXPECT_EQ(snap.histograms.count("obs_disabled_test/timer"), 0u);
  EXPECT_EQ(snap.histograms.count("span/obs_disabled_test/span"), 0u);
  EXPECT_EQ(snap.CounterValue("obs_disabled_test/count"), 0u);
}

TEST(ObsDisabled, NowIsConstantZero) {
  EXPECT_EQ(WSV_OBS_NOW(), 0u);
}

TEST(ObsDisabled, RegistryApiStillLinks) {
  // Direct API use (as opposed to the macros) still works — the kill
  // switch compiles out instrumentation, not the subsystem.
  obs::GetCounter("obs_disabled_test/direct").Add(7);
  EXPECT_EQ(obs::SnapshotMetrics().CounterValue("obs_disabled_test/direct"),
            7u);
  obs::ResetMetrics();
}

}  // namespace
}  // namespace wsv
