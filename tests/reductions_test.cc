#include <gtest/gtest.h>

#include <random>

#include "ltl/ltl_parser.h"
#include "reductions/fdid.h"
#include "reductions/fovalidity.h"
#include "reductions/qbf.h"
#include "reductions/turing.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "ws/classify.h"

namespace wsv {
namespace {

// --- QBF / Lemma A.6 ---------------------------------------------------------

TEST(QbfTest, DirectEvaluation) {
  // exists x . x          -> true
  EXPECT_TRUE(*EvaluateQbf(*Qbf::Exists("x", Qbf::Var("x"))));
  // forall x . x          -> false
  EXPECT_FALSE(*EvaluateQbf(*Qbf::Forall("x", Qbf::Var("x"))));
  // forall x . x | !x     -> true
  EXPECT_TRUE(*EvaluateQbf(
      *Qbf::Forall("x", Qbf::Or(Qbf::Var("x"), Qbf::Not(Qbf::Var("x"))))));
  // exists x . forall y . x & (y | !y)
  EXPECT_TRUE(*EvaluateQbf(*Qbf::Exists(
      "x", Qbf::Forall("y", Qbf::And(Qbf::Var("x"),
                                     Qbf::Or(Qbf::Var("y"),
                                             Qbf::Not(Qbf::Var("y"))))))));
  // Free variables are an error.
  EXPECT_FALSE(EvaluateQbf(*Qbf::Var("x")).ok());
}

TEST(QbfTest, ServiceIsInputBounded) {
  QbfPtr f = Qbf::Exists("x", Qbf::Var("x"));
  auto ws = BuildQbfService(*f);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  Status st = CheckInputBoundedService(*ws);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

class QbfReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(QbfReductionTest, ErrorFreenessMatchesTruth) {
  std::vector<QbfPtr> formulas{
      Qbf::Exists("x", Qbf::Var("x")),
      Qbf::Forall("x", Qbf::Var("x")),
      Qbf::Forall("x", Qbf::Or(Qbf::Var("x"), Qbf::Not(Qbf::Var("x")))),
      Qbf::Exists("x", Qbf::And(Qbf::Var("x"), Qbf::Not(Qbf::Var("x")))),
      Qbf::Exists(
          "x", Qbf::Forall("y", Qbf::Or(Qbf::Not(Qbf::Var("x")),
                                        Qbf::Var("y")))),
      Qbf::Forall(
          "x", Qbf::Exists("y", Qbf::Or(Qbf::Not(Qbf::Var("x")),
                                        Qbf::Var("y")))),
  };
  const QbfPtr& f = formulas[static_cast<size_t>(GetParam())];
  bool truth = *EvaluateQbf(*f);
  auto ws = BuildQbfService(*f);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  ErrorFreeOptions options;
  options.db.fresh_values = 0;          // domain = {"0", "1"}
  options.db.max_tuples_per_relation = 2;
  auto r = CheckErrorFree(*ws, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Lemma A.6: the service is error-free iff the formula is FALSE.
  EXPECT_EQ(r->error_free, !truth) << f->ToString();
}

INSTANTIATE_TEST_SUITE_P(Formulas, QbfReductionTest,
                         ::testing::Range(0, 6));

// --- Turing machines / Theorem 3.7 -------------------------------------------

TuringMachine HaltingMachine() {
  // q0 on blank: write 1, move right, q1; q1 on blank: halt.
  TuringMachine tm;
  tm.moves.push_back({"q0", "b", "1", "q1", TuringMachine::Dir::kRight});
  tm.moves.push_back({"q1", "b", "b", "qH", TuringMachine::Dir::kStay});
  return tm;
}

TuringMachine LoopingMachine() {
  // q0 on blank: stay on q0 forever.
  TuringMachine tm;
  tm.moves.push_back({"q0", "b", "b", "q0", TuringMachine::Dir::kStay});
  return tm;
}

TuringMachine LeftRightMachine() {
  // Bounces once: right then left, then halts at the left end.
  TuringMachine tm;
  tm.moves.push_back({"q0", "b", "1", "q1", TuringMachine::Dir::kRight});
  tm.moves.push_back({"q1", "b", "1", "q2", TuringMachine::Dir::kLeft});
  tm.moves.push_back({"q2", "1", "1", "qH", TuringMachine::Dir::kStay});
  return tm;
}

TEST(TuringTest, SimulatorGroundTruth) {
  EXPECT_TRUE(SimulateTm(HaltingMachine(), 10));
  EXPECT_FALSE(SimulateTm(LoopingMachine(), 100));
  EXPECT_TRUE(SimulateTm(LeftRightMachine(), 10));
}

TEST(TuringTest, ServiceViolatesInputBoundednessOnlyInOptions) {
  auto ws = BuildTuringService(HaltingMachine());
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  // The init options rule uses state atoms with variables — the paper's
  // extension (i) — so the classifier must reject it.
  EXPECT_FALSE(CheckInputBoundedService(*ws).ok());
}

StatusOr<bool> MachineHaltsWithinBounds(const TuringMachine& tm,
                                        int fresh_cells) {
  WSV_ASSIGN_OR_RETURN(WebService ws, BuildTuringService(tm));
  WSV_ASSIGN_OR_RETURN(TemporalProperty prop,
                       TuringNonHaltingProperty(tm, ws));
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  options.db.fresh_values = fresh_cells;
  options.db.max_tuples_per_relation = fresh_cells + 1;
  options.extra_constant_values = 0;
  LtlVerifier verifier(&ws, options);
  WSV_ASSIGN_OR_RETURN(LtlVerifyResult r, verifier.Verify(prop));
  return !r.holds;  // a violation == the halting state is reachable
}

TEST(TuringTest, HaltingMachineDetected) {
  auto halts = MachineHaltsWithinBounds(HaltingMachine(), 2);
  ASSERT_TRUE(halts.ok()) << halts.status().ToString();
  EXPECT_TRUE(*halts);
}

TEST(TuringTest, LoopingMachineProducesNoViolation) {
  auto halts = MachineHaltsWithinBounds(LoopingMachine(), 2);
  ASSERT_TRUE(halts.ok()) << halts.status().ToString();
  EXPECT_FALSE(*halts);
}

TEST(TuringTest, LeftMovesSimulateCorrectly) {
  auto halts = MachineHaltsWithinBounds(LeftRightMachine(), 2);
  ASSERT_TRUE(halts.ok()) << halts.status().ToString();
  EXPECT_TRUE(*halts);
}

// --- FD + ID implication / Theorem 3.8 ---------------------------------------

TEST(FdidTest, ClosureOracle) {
  // A -> B, B -> C implies A -> C.
  FdidInstance good;
  good.arity = 3;
  good.fds = {{{0}, 1}, {{1}, 2}};
  good.goal = {{0}, 2};
  EXPECT_TRUE(FdImplies(good));
  // ... but not C -> A.
  FdidInstance bad = good;
  bad.goal = {{2}, 0};
  EXPECT_FALSE(FdImplies(bad));
}

TEST(FdidTest, ServiceUsesStateProjections) {
  FdidInstance inst;
  inst.arity = 2;
  inst.fds = {{{0}, 1}};
  inst.goal = {{0}, 1};
  auto red = BuildFdidReduction(inst);
  ASSERT_TRUE(red.ok()) << red.status().ToString();
  // State projections break input-boundedness (Theorem 3.8's point).
  EXPECT_FALSE(CheckInputBoundedService(red->service).ok());
}

StatusOr<bool> FdidHoldsWithinBounds(const FdidInstance& inst) {
  WSV_ASSIGN_OR_RETURN(FdidReduction red, BuildFdidReduction(inst));
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  options.db.fresh_values = 2;
  options.db.max_tuples_per_relation = 2;  // R supplies 2 domain values
  options.extra_constant_values = 0;
  options.graph.max_nodes = 40000;
  LtlVerifier verifier(&red.service, options);
  WSV_ASSIGN_OR_RETURN(LtlVerifyResult r, verifier.Verify(red.property));
  return r.holds;
}

TEST(FdidTest, TrivialImplicationHolds) {
  // {A -> B} implies A -> B.
  FdidInstance inst;
  inst.arity = 2;
  inst.fds = {{{0}, 1}};
  inst.goal = {{0}, 1};
  auto r = FdidHoldsWithinBounds(inst);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST(FdidTest, NonImplicationRefutedWithWitness) {
  // {} does not imply A -> B: a two-tuple S refutes it.
  FdidInstance inst;
  inst.arity = 2;
  inst.fds = {};
  inst.goal = {{0}, 1};
  EXPECT_FALSE(FdImplies(inst));
  auto r = FdidHoldsWithinBounds(inst);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(*r);
}

TEST(FdidTest, InclusionDependencySatisfiedTrivially) {
  // S[0] subseteq S[0] always holds, so it never fires viol; goal A -> A
  // holds trivially.
  FdidInstance inst;
  inst.arity = 2;
  inst.inds = {{{0}, {0}}};
  inst.goal = {{0}, 0};
  auto r = FdidHoldsWithinBounds(inst);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}


// --- exists-forall FO validity / Theorem 4.2 ---------------------------------

// Random databases: the service route must agree with direct evaluation.
class FoValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(FoValidityTest, ServiceRouteAgreesWithDirectEvaluation) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  auto v = [](const std::string& s) { return Value::Intern(s); };
  const char* matrices[] = {
      "Rel(x, y) | !Rel(x, y)",  // valid
      "Rel(x, y)",               // exists a row-complete x
      "!Rel(x, y)",              // exists an isolated x
      "Rel(x, y) -> Rel(y, x)",  // x whose edges are all symmetric
      "x = y | Rel(x, y)",
  };
  for (int iter = 0; iter < 4; ++iter) {
    Instance db;
    std::vector<Value> dom{v("a"), v("b")};
    if (rng() % 2) dom.push_back(v("c"));
    for (Value d : dom) ASSERT_TRUE(db.AddFact("Dom", {d}).ok());
    (void)db.EnsureRelation("Rel", 2);
    for (Value d1 : dom) {
      for (Value d2 : dom) {
        if (rng() % 2) ASSERT_TRUE(db.AddFact("Rel", {d1, d2}).ok());
      }
    }
    for (const char* psi : matrices) {
      SCOPED_TRACE(std::string(psi) + " iter " + std::to_string(iter));
      auto red = BuildFoValidityReduction(psi);
      ASSERT_TRUE(red.ok()) << red.status().ToString();
      auto direct = ExistsForallDirect(psi, db);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      auto via = ExistsForallViaService(*red, db);
      ASSERT_TRUE(via.ok()) << via.status().ToString();
      EXPECT_EQ(*direct, *via);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoValidityTest, ::testing::Values(5, 6));

TEST(FoValidityTest2, ReductionServiceIsInputBounded) {
  auto red = BuildFoValidityReduction("Rel(x, y)");
  ASSERT_TRUE(red.ok()) << red.status().ToString();
  // Theorem 4.2's point: the *service* stays input-bounded; the
  // undecidability comes from the branching-time property.
  Status st = CheckInputBoundedService(red->service);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(red->property.formula->IsCtl());
}

}  // namespace
}  // namespace wsv
