#include <gtest/gtest.h>

#include <random>

#include "automata/buchi.h"
#include "automata/emptiness.h"
#include "automata/ltl_to_buchi.h"
#include "ltl/ltl_parser.h"

namespace wsv {
namespace {

// Does the degeneralized automaton accept the lasso word
// steps[0..n) with loop back to steps[loop]? Each step assigns a truth
// value per leaf. Decided via product + accepting-lasso search.
bool Accepts(const BuchiAutomaton& aut,
             const std::vector<std::vector<char>>& word, size_t loop) {
  const size_t n = word.size();
  auto next = [&](size_t i) { return i + 1 < n ? i + 1 : loop; };
  // Product vertices: (position, state) with matching label.
  auto vid = [&](size_t i, size_t q) { return i * aut.size() + q; };
  std::vector<std::vector<int>> succ(n * aut.size());
  std::vector<char> initial(n * aut.size(), 0);
  std::vector<char> accepting(n * aut.size(), 0);
  const std::set<int>& acc = aut.accepting_sets.front();
  for (size_t i = 0; i < n; ++i) {
    for (size_t q = 0; q < aut.size(); ++q) {
      if (aut.states[q] != word[i]) continue;
      if (i == 0 && aut.initial[q]) initial[vid(i, q)] = 1;
      if (acc.count(static_cast<int>(q)) > 0) accepting[vid(i, q)] = 1;
      for (int q2 : aut.succ[q]) {
        if (aut.states[static_cast<size_t>(q2)] == word[next(i)]) {
          succ[vid(i, q)].push_back(
              static_cast<int>(vid(next(i), static_cast<size_t>(q2))));
        }
      }
    }
  }
  return FindAcceptingLasso(succ, initial, accepting).has_value();
}

// Direct LTL evaluation on the lasso word, with leaves resolved
// positionally (leaf k true at i iff word[i][k]).
StatusOr<std::vector<char>> Truth(const TFormula& f,
                                  const std::vector<std::vector<char>>& word,
                                  size_t loop,
                                  const std::map<std::string, int>& leaf_idx) {
  const size_t n = word.size();
  auto next = [&](size_t i) { return i + 1 < n ? i + 1 : loop; };
  switch (f.kind()) {
    case TFormula::Kind::kFo: {
      std::vector<char> v(n);
      const Formula& fo = *f.fo();
      if (fo.kind() == Formula::Kind::kTrue) {
        v.assign(n, 1);
      } else if (fo.kind() == Formula::Kind::kFalse) {
        v.assign(n, 0);
      } else {
        int k = leaf_idx.at(fo.ToString());
        for (size_t i = 0; i < n; ++i) v[i] = word[i][k];
      }
      return v;
    }
    case TFormula::Kind::kNot: {
      WSV_ASSIGN_OR_RETURN(std::vector<char> s,
                           Truth(*f.children()[0], word, loop, leaf_idx));
      for (char& b : s) b = !b;
      return s;
    }
    case TFormula::Kind::kAnd:
    case TFormula::Kind::kOr: {
      bool is_and = f.kind() == TFormula::Kind::kAnd;
      std::vector<char> acc(n, is_and);
      for (const TFormulaPtr& c : f.children()) {
        WSV_ASSIGN_OR_RETURN(std::vector<char> s,
                             Truth(*c, word, loop, leaf_idx));
        for (size_t i = 0; i < n; ++i) {
          acc[i] = is_and ? (acc[i] && s[i]) : (acc[i] || s[i]);
        }
      }
      return acc;
    }
    case TFormula::Kind::kX: {
      WSV_ASSIGN_OR_RETURN(std::vector<char> s,
                           Truth(*f.children()[0], word, loop, leaf_idx));
      std::vector<char> v(n);
      for (size_t i = 0; i < n; ++i) v[i] = s[next(i)];
      return v;
    }
    case TFormula::Kind::kU:
    case TFormula::Kind::kB: {
      WSV_ASSIGN_OR_RETURN(std::vector<char> l,
                           Truth(*f.lhs(), word, loop, leaf_idx));
      WSV_ASSIGN_OR_RETURN(std::vector<char> r,
                           Truth(*f.rhs(), word, loop, leaf_idx));
      bool until = f.kind() == TFormula::Kind::kU;
      std::vector<char> v(n, until ? 0 : 1);
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
          char nv = until ? (r[i] || (l[i] && v[next(i)]))
                          : (r[i] && (l[i] || v[next(i)]));
          if (nv != v[i]) {
            v[i] = nv;
            changed = true;
          }
        }
      }
      return v;
    }
    default:
      return Status::InvalidArgument("not LTL");
  }
}

TEST(LtlToBuchiTest, GloballyP) {
  auto p = ParseTemporalProperty("G(a)", nullptr);
  ASSERT_TRUE(p.ok());
  auto gba = LtlToBuchi(*p->formula);
  ASSERT_TRUE(gba.ok()) << gba.status().ToString();
  BuchiAutomaton aut = gba->Degeneralize();
  ASSERT_EQ(aut.leaves.size(), 1u);
  // Word "a forever" accepted; "a then !a forever" rejected.
  EXPECT_TRUE(Accepts(aut, {{1}}, 0));
  EXPECT_FALSE(Accepts(aut, {{1}, {0}}, 1));
}

TEST(LtlToBuchiTest, EventuallyP) {
  auto p = ParseTemporalProperty("F(a)", nullptr);
  ASSERT_TRUE(p.ok());
  BuchiAutomaton aut = LtlToBuchi(*p->formula)->Degeneralize();
  EXPECT_TRUE(Accepts(aut, {{0}, {1}, {0}}, 2));
  EXPECT_FALSE(Accepts(aut, {{0}}, 0));
}

TEST(LtlToBuchiTest, UntilRequiresEventualFulfilment) {
  auto p = ParseTemporalProperty("a U b", nullptr);
  ASSERT_TRUE(p.ok());
  BuchiAutomaton aut = LtlToBuchi(*p->formula)->Degeneralize();
  // Leaves are collected in syntactic order: a then b.
  ASSERT_EQ(aut.leaves.size(), 2u);
  EXPECT_TRUE(Accepts(aut, {{1, 0}, {0, 1}, {0, 0}}, 2));  // a, b, ...
  EXPECT_FALSE(Accepts(aut, {{1, 0}}, 0));                 // a forever
  EXPECT_TRUE(Accepts(aut, {{0, 1}, {0, 0}}, 1));          // b now
  EXPECT_FALSE(Accepts(aut, {{0, 0}, {0, 1}, {0, 0}}, 2)); // gap
}

TEST(LtlToBuchiTest, NextOperator) {
  auto p = ParseTemporalProperty("X(a)", nullptr);
  ASSERT_TRUE(p.ok());
  BuchiAutomaton aut = LtlToBuchi(*p->formula)->Degeneralize();
  EXPECT_TRUE(Accepts(aut, {{0}, {1}, {0}}, 2));
  EXPECT_FALSE(Accepts(aut, {{1}, {0}}, 1));
}

TEST(LtlToBuchiTest, RejectsPathQuantifiers) {
  auto p = ParseTemporalProperty("E F(a)", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(LtlToBuchi(*p->formula).ok());
}

// Property-based sweep: random LTL formulas vs. random lasso words; the
// automaton-product decision must coincide with direct evaluation.
class RandomLtlTest : public ::testing::TestWithParam<int> {};

TFormulaPtr RandomFormula(std::mt19937_64& rng, int depth) {
  auto leaf = [&]() {
    return TFormula::Fo(
        Formula::MakeAtom(rng() % 2 == 0 ? "a" : "b", {}));
  };
  if (depth == 0) return leaf();
  switch (rng() % 8) {
    case 0:
      return leaf();
    case 1:
      return TFormula::Not(RandomFormula(rng, depth - 1));
    case 2:
      return TFormula::And(RandomFormula(rng, depth - 1),
                           RandomFormula(rng, depth - 1));
    case 3:
      return TFormula::Or(RandomFormula(rng, depth - 1),
                          RandomFormula(rng, depth - 1));
    case 4:
      return TFormula::X(RandomFormula(rng, depth - 1));
    case 5:
      return TFormula::U(RandomFormula(rng, depth - 1),
                         RandomFormula(rng, depth - 1));
    case 6:
      return TFormula::B(RandomFormula(rng, depth - 1),
                         RandomFormula(rng, depth - 1));
    default:
      return TFormula::F(RandomFormula(rng, depth - 1));
  }
}

TEST_P(RandomLtlTest, ProductAgreesWithDirectEvaluation) {
  std::mt19937_64 rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    TFormulaPtr f = RandomFormula(rng, 3);
    auto gba = LtlToBuchi(*f);
    if (!gba.ok()) continue;  // too many elementary subformulas
    BuchiAutomaton aut = gba->Degeneralize();
    std::map<std::string, int> leaf_idx;
    for (size_t k = 0; k < aut.leaves.size(); ++k) {
      leaf_idx[aut.leaves[k]->ToString()] = static_cast<int>(k);
    }
    // Random lasso word over the leaves.
    size_t n = 1 + rng() % 5;
    size_t loop = rng() % n;
    std::vector<std::vector<char>> word(n);
    for (auto& w : word) {
      w.resize(aut.leaves.size());
      for (auto& bit : w) bit = rng() % 2;
    }
    bool by_product = Accepts(aut, word, loop);
    auto direct = Truth(*f, word, loop, leaf_idx);
    ASSERT_TRUE(direct.ok());
    bool by_eval = (*direct)[0] != 0;
    ASSERT_EQ(by_product, by_eval)
        << "formula: " << f->ToString() << " word length " << n << " loop "
        << loop;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLtlTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DegeneralizeTest, NoAcceptingSetsMeansAllAccepting) {
  BuchiAutomaton gba;
  gba.states = {{1}};
  gba.leaves.push_back(Formula::MakeAtom("a", {}));
  gba.succ = {{0}};
  gba.initial = {1};
  BuchiAutomaton aut = gba.Degeneralize();
  ASSERT_EQ(aut.accepting_sets.size(), 1u);
  EXPECT_EQ(aut.accepting_sets[0].size(), 1u);
}

TEST(EmptinessTest, FindsSimpleLasso) {
  // 0 -> 1 -> 2 -> 1, accepting {2}.
  std::vector<std::vector<int>> succ{{1}, {2}, {1}};
  std::optional<Lasso> lasso =
      FindAcceptingLasso(succ, {1, 0, 0}, {0, 0, 1});
  ASSERT_TRUE(lasso.has_value());
  EXPECT_EQ(lasso->prefix.front(), 0);
  EXPECT_EQ(lasso->prefix.back(), lasso->cycle.front());
  // The cycle returns to its front.
  int last = lasso->cycle.back();
  bool closes = false;
  for (int w : succ[last]) {
    if (w == lasso->cycle.front()) closes = true;
  }
  EXPECT_TRUE(closes);
}

TEST(EmptinessTest, EmptyWhenAcceptingUnreachableOrAcyclic) {
  std::vector<std::vector<int>> succ{{1}, {1}, {2}};
  // Accepting state 2 unreachable from initial 0.
  EXPECT_FALSE(FindAcceptingLasso(succ, {1, 0, 0}, {0, 0, 1}).has_value());
  // Accepting state 0 not on a cycle.
  std::vector<std::vector<int>> dag{{1}, {1}};
  EXPECT_FALSE(FindAcceptingLasso(dag, {1, 0}, {1, 0}).has_value());
}

TEST(EmptinessTest, SelfLoopCounts) {
  std::vector<std::vector<int>> succ{{0}};
  std::optional<Lasso> lasso = FindAcceptingLasso(succ, {1}, {1});
  ASSERT_TRUE(lasso.has_value());
  EXPECT_EQ(lasso->cycle, std::vector<int>{0});
}

}  // namespace
}  // namespace wsv
