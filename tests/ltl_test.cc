#include <gtest/gtest.h>

#include "gallery/gallery.h"
#include "ltl/ltl.h"
#include "ltl/ltl_parser.h"
#include "ltl/run_semantics.h"
#include "runtime/interpreter.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

TEST(TemporalParserTest, ParsesNavigationProperty) {
  // Example 3.2, property (1).
  auto p = ParseTemporalProperty("G(!P) | F(P & F(Q))", nullptr);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->universal_vars.empty());
  EXPECT_TRUE(p->formula->IsLtl());
  EXPECT_TRUE(p->formula->IsPropositional());
}

TEST(TemporalParserTest, LeadingForallBecomesClosure) {
  auto p = ParseTemporalProperty("forall x, y . G(!t(x, y))", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->universal_vars, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(p->formula->FreeVariables(),
            (std::set<std::string>{"x", "y"}));
}

TEST(TemporalParserTest, CoalescesPureFoSubtrees) {
  auto p = ParseTemporalProperty("G(a & !b)", nullptr);
  ASSERT_TRUE(p.ok());
  // G(phi) == false B phi with a single FO leaf.
  ASSERT_EQ(p->formula->kind(), TFormula::Kind::kB);
  EXPECT_EQ(p->formula->rhs()->kind(), TFormula::Kind::kFo);
}

TEST(TemporalParserTest, QuantifierOverTemporalRejected) {
  EXPECT_FALSE(
      ParseTemporalProperty("exists x . F(p(x))", nullptr).ok());
}

TEST(TemporalParserTest, UntilAndBefore) {
  auto p = ParseTemporalProperty("a U b", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->formula->kind(), TFormula::Kind::kU);
  auto q = ParseTemporalProperty("a B b", nullptr);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->formula->kind(), TFormula::Kind::kB);
}

TEST(TemporalParserTest, CtlClassification) {
  auto ctl = ParseTemporalProperty("A G(E F(home))", nullptr);
  ASSERT_TRUE(ctl.ok()) << ctl.status().ToString();
  EXPECT_TRUE(ctl->formula->IsCtl());
  EXPECT_FALSE(ctl->formula->IsLtl());
  // CTL*: E applied to a boolean combination of path formulas.
  auto star = ParseTemporalProperty("E(F(p) & G(q))", nullptr);
  ASSERT_TRUE(star.ok());
  EXPECT_FALSE(star->formula->IsCtl());
}

TEST(TemporalParserTest, Example41NestedPathQuantifiers) {
  // Example 4.1's shape: AG(phi -> A((E F cancel) U ship)). Both U
  // operands are state formulas, so this is CTL.
  auto p = ParseTemporalProperty(
      "A G(!paidfor | A ((E F(cancelled)) U shippd))", nullptr);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->formula->IsCtl());
  EXPECT_FALSE(p->formula->IsLtl());
}

TEST(TemporalNnfTest, PushesNegationThroughOperators) {
  auto p = ParseTemporalProperty("!(F(a))", nullptr);
  ASSERT_TRUE(p.ok());
  TFormulaPtr nnf = ToNegationNormalForm(*p->formula);
  // !F a = ! (true U a) = false B !a = G !a.
  EXPECT_EQ(nnf->kind(), TFormula::Kind::kB);
  auto q = ParseTemporalProperty("!(X(a U b))", nullptr);
  ASSERT_TRUE(q.ok());
  TFormulaPtr qn = ToNegationNormalForm(*q->formula);
  EXPECT_EQ(qn->kind(), TFormula::Kind::kX);
  EXPECT_EQ(qn->children()[0]->kind(), TFormula::Kind::kB);
  auto r = ParseTemporalProperty("!(E G(a))", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToNegationNormalForm(*r->formula)->kind(),
            TFormula::Kind::kA);
}

// --- Lasso semantics on real runs -------------------------------------------

class LassoSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ws = BuildLoginService();
    ASSERT_TRUE(ws.ok());
    service_ = std::move(ws).value();
    db_ = LoginDatabase();
  }

  // Executes the script and loops on the final (terminal) page.
  LassoRun MakeLasso(std::vector<UserChoice> script, int steps) {
    ScriptedInputProvider provider(std::move(script));
    Interpreter interp(&service_, &db_);
    auto run = interp.Run(provider, steps);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    LassoRun lasso;
    lasso.steps = run->trace;
    lasso.loop_start = lasso.steps.size() - 1;
    return lasso;
  }

  StatusOr<bool> Check(const std::string& prop, const LassoRun& lasso) {
    auto p = ParseTemporalProperty(prop, &service_.vocab());
    if (!p.ok()) return p.status();
    return EvaluateLtlOnLasso(*p, lasso, db_, service_);
  }

  UserChoice Login(const char* name, const char* pw) {
    UserChoice c;
    c.constant_values["name"] = V(name);
    c.constant_values["password"] = V(pw);
    c.relation_choices["button"] = Tuple{V("login")};
    return c;
  }

  WebService service_;
  Instance db_;
};

TEST_F(LassoSemanticsTest, PagePropositionsTrackTheRun) {
  LassoRun lasso = MakeLasso({Login("alice", "pw")}, 3);
  EXPECT_TRUE(*Check("HP", lasso));
  EXPECT_FALSE(*Check("CP", lasso));
  EXPECT_TRUE(*Check("X(CP)", lasso));
  EXPECT_TRUE(*Check("F(CP)", lasso));
  EXPECT_TRUE(*Check("G(HP | CP | BYE)", lasso));
}

TEST_F(LassoSemanticsTest, UntilAndBeforeSemantics) {
  LassoRun lasso = MakeLasso({Login("alice", "pw")}, 3);
  EXPECT_TRUE(*Check("HP U CP", lasso));
  EXPECT_FALSE(*Check("HP U MP", lasso));
  // Before: logged_in must hold before reaching BYE... it does (set on
  // the CP step).
  EXPECT_TRUE(*Check("logged_in B !BYE", lasso));
}

TEST_F(LassoSemanticsTest, StateAtomsAndConstants) {
  LassoRun good = MakeLasso({Login("alice", "pw")}, 3);
  EXPECT_TRUE(*Check("G(!error(\"failed login\"))", good));
  EXPECT_TRUE(*Check("F(logged_in)", good));
  LassoRun bad = MakeLasso({Login("alice", "nope")}, 3);
  EXPECT_TRUE(*Check("F(error(\"failed login\"))", bad));
  EXPECT_TRUE(*Check("G(!logged_in)", bad));
}

TEST_F(LassoSemanticsTest, InputConstantSemanticsConditionA) {
  // A sentence using an input constant is false before the constant is
  // provided: user(name, password) is false at step 0... no wait, it is
  // provided AT step 0 (kappa_0 includes HP's requests). Check against a
  // run that never provides them: quit immediately? HP always requests.
  // Instead check the atom itself evaluates with the provided values.
  LassoRun lasso = MakeLasso({Login("alice", "pw")}, 3);
  EXPECT_TRUE(*Check("user(name, password)", lasso));
  LassoRun bad = MakeLasso({Login("alice", "nope")}, 3);
  EXPECT_FALSE(*Check("user(name, password)", bad));
}

TEST_F(LassoSemanticsTest, UniversalClosure) {
  LassoRun bad = MakeLasso({Login("alice", "nope")}, 3);
  EXPECT_FALSE(*Check("forall m . G(!error(m))", bad));
  LassoRun good = MakeLasso({Login("alice", "pw")}, 3);
  EXPECT_TRUE(*Check("forall m . G(!error(m))", good));
}

TEST_F(LassoSemanticsTest, PathQuantifiersRejected) {
  LassoRun lasso = MakeLasso({Login("alice", "pw")}, 2);
  EXPECT_FALSE(Check("A G(HP)", lasso).ok());
}

}  // namespace
}  // namespace wsv
