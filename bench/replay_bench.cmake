# Driver for the replay cache benchmark (cmake -P script): generates
# the deterministic 1000-request workload, replays it through `wsvcli
# replay` against a fresh cache directory, and — when BUDGETS is set —
# holds the report to bench/budgets_replay.json (repeat hit rate >= 0.9,
# zero products built on cache-served requests, hit p99 under 1ms).
#
# Variables: PYTHON, WSVCLI, SRC_DIR, WORK_DIR, OUT_JSON, [BUDGETS]

execute_process(
  COMMAND ${PYTHON} ${SRC_DIR}/tools/gen_replay.py
          --requests 1000 --seed 42
          --out ${WORK_DIR}/replay_jobs.jsonl
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "gen_replay.py failed (${rv})")
endif()

# A fresh cache: the budgets measure within-stream reuse, not leftovers.
file(REMOVE_RECURSE ${WORK_DIR}/replay_cache)

execute_process(
  COMMAND ${WSVCLI} replay ${WORK_DIR}/replay_jobs.jsonl
          --cache-dir ${WORK_DIR}/replay_cache --quiet
          --bench-json ${OUT_JSON}
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "wsvcli replay failed (${rv})")
endif()

if(BUDGETS)
  execute_process(
    COMMAND ${PYTHON} ${SRC_DIR}/tools/bench_guard.py
            ${OUT_JSON} ${BUDGETS} --json-report
    RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "replay budgets violated (${rv})")
  endif()
endif()
