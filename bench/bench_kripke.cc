// E7 — Kripke construction from a propositional service and a database
// (Theorem 4.4 / Lemma A.12). The structure is exponential in the
// service in the worst case (states are proposition sets); the sweep
// over the number of independent state propositions shows the blow-up,
// while the page count alone contributes only linearly.

#include <benchmark/benchmark.h>

#include <string>

#include "verify/abstraction.h"
#include "ws/builder.h"

namespace wsv {
namespace {

// A ring of `pages` pages; each page can toggle `bits` independent state
// propositions through a parameterized input, then move on.
StatusOr<WebService> RingService(int pages, int bits) {
  ServiceBuilder b("Ring");
  b.Input("act", 1);
  for (int i = 0; i < bits; ++i) {
    b.State("s" + std::to_string(i), 0);
  }
  for (int p = 0; p < pages; ++p) {
    PageBuilder page = b.Page("P" + std::to_string(p));
    std::string options;
    for (int i = 0; i < bits; ++i) {
      if (i > 0) options += " | ";
      options += "x = \"set" + std::to_string(i) + "\" | x = \"clr" +
                 std::to_string(i) + "\"";
    }
    options += " | x = \"go\"";
    page.Options("act(x)", options);
    for (int i = 0; i < bits; ++i) {
      std::string si = std::to_string(i);
      page.Insert("s" + si, "act(\"set" + si + "\")");
      page.Delete("s" + si, "act(\"clr" + si + "\")");
    }
    page.Target("P" + std::to_string((p + 1) % pages), "act(\"go\")");
  }
  b.Home("P0").Error("ERR");
  return b.Build();
}

void BM_KripkeVsBits(benchmark::State& state) {
  WebService service =
      std::move(RingService(3, static_cast<int>(state.range(0)))).value();
  Instance db;
  KripkeBuildOptions options;
  options.graph.constant_pool = {Value::Intern("c0")};
  for (auto _ : state) {
    auto kripke = BuildPropositionalKripke(service, db, options);
    if (!kripke.ok()) {
      state.SkipWithError(kripke.status().ToString().c_str());
      return;
    }
    state.counters["kripke_states"] = static_cast<double>(kripke->size());
  }
}
BENCHMARK(BM_KripkeVsBits)->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_KripkeVsPages(benchmark::State& state) {
  WebService service =
      std::move(RingService(static_cast<int>(state.range(0)), 2)).value();
  Instance db;
  KripkeBuildOptions options;
  options.graph.constant_pool = {Value::Intern("c0")};
  for (auto _ : state) {
    auto kripke = BuildPropositionalKripke(service, db, options);
    if (!kripke.ok()) {
      state.SkipWithError(kripke.status().ToString().c_str());
      return;
    }
    state.counters["kripke_states"] = static_cast<double>(kripke->size());
  }
}
BENCHMARK(BM_KripkeVsPages)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
