// E8 + E9 — branching-time model checking.
//
// E8: the CTL labeling algorithm is polynomial in the Kripke structure —
// the sweep over structure size shows near-linear growth for fixed
// formulas (contrast with the exponential constructions elsewhere).
//
// E9: CTL* checking on the same structures costs more than CTL (it
// builds Büchi products per path quantifier) but decides the same
// formulas; the fully-propositional case of Theorem 4.6 is exercised by
// checking formulas over a service-shaped random structure.

#include <benchmark/benchmark.h>

#include <random>

#include "ctl/ctl_check.h"
#include "ctl/ctl_star_check.h"
#include "ltl/ltl_parser.h"

namespace wsv {
namespace {

Kripke RandomKripke(int states, int degree, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Kripke k;
  int p = k.InternProp("p");
  int q = k.InternProp("q");
  for (int s = 0; s < states; ++s) {
    std::set<int> label;
    if (rng() % 2) label.insert(p);
    if (rng() % 2) label.insert(q);
    k.AddState(std::move(label));
  }
  for (int s = 0; s < states; ++s) {
    for (int d = 0; d < degree; ++d) {
      k.AddEdge(s, static_cast<int>(rng() % states));
    }
  }
  k.SetInitial(0);
  return k;
}

const char kCtlFormula[] = "A G(p -> E F(q))";
const char kCtlStarFormula[] = "A G(!p | E (F(q) & F(p)))";

void BM_CtlLabeling(benchmark::State& state) {
  Kripke k = RandomKripke(static_cast<int>(state.range(0)), 3, 42);
  auto prop = ParseTemporalProperty(kCtlFormula, nullptr);
  for (auto _ : state) {
    auto r = CtlHolds(k, *prop->formula);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
  state.counters["states"] = static_cast<double>(k.size());
}
BENCHMARK(BM_CtlLabeling)->RangeMultiplier(4)->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_CtlStarOnCtlFormula(benchmark::State& state) {
  Kripke k = RandomKripke(static_cast<int>(state.range(0)), 3, 42);
  auto prop = ParseTemporalProperty(kCtlFormula, nullptr);
  for (auto _ : state) {
    auto r = CtlStarHolds(k, *prop->formula);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_CtlStarOnCtlFormula)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_CtlStarProper(benchmark::State& state) {
  Kripke k = RandomKripke(static_cast<int>(state.range(0)), 3, 42);
  auto prop = ParseTemporalProperty(kCtlStarFormula, nullptr);
  for (auto _ : state) {
    auto r = CtlStarHolds(k, *prop->formula);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_CtlStarProper)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

// Agreement spot-check under timing: CTL and CTL* must return the same
// verdicts on CTL formulas (the correctness backbone of Theorem 4.4's
// two bounds).
void BM_CtlVsCtlStarAgreement(benchmark::State& state) {
  auto prop = ParseTemporalProperty(kCtlFormula, nullptr);
  uint64_t seed = 1;
  for (auto _ : state) {
    Kripke k = RandomKripke(128, 2, seed++);
    auto a = CtlHolds(k, *prop->formula);
    auto b = CtlStarHolds(k, *prop->formula);
    if (!a.ok() || !b.ok() || *a != *b) {
      state.SkipWithError("CTL and CTL* disagree");
      return;
    }
  }
}
BENCHMARK(BM_CtlVsCtlStarAgreement)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
