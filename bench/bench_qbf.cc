// E4 — the QBF reduction (Lemma A.6): error-freeness is PSPACE-hard.
//
// The verifier decides QBF instances through the reduction; time grows
// exponentially with the number of quantified variables (each boolean
// quantifier doubles the FO evaluation work), matching the hardness
// direction of Theorem 3.5's PSPACE-completeness. The direct QBF
// evaluator is benchmarked alongside as the baseline.

#include <benchmark/benchmark.h>

#include "reductions/qbf.h"
#include "verify/error_free.h"

namespace wsv {
namespace {

void BM_QbfDirect(benchmark::State& state) {
  QbfPtr f = RandomQbf(static_cast<int>(state.range(0)), 4, /*seed=*/7);
  for (auto _ : state) {
    auto r = EvaluateQbf(*f);
    if (!r.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_QbfDirect)->DenseRange(2, 10, 2);

void BM_QbfViaErrorFreeness(benchmark::State& state) {
  QbfPtr f = RandomQbf(static_cast<int>(state.range(0)), 4, /*seed=*/7);
  bool truth = *EvaluateQbf(*f);
  WebService service = std::move(BuildQbfService(*f)).value();
  ErrorFreeOptions options;
  options.db.fresh_values = 0;
  options.db.max_tuples_per_relation = 2;
  for (auto _ : state) {
    auto r = CheckErrorFree(service, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    // Lemma A.6: error-free iff the formula is false.
    if (r->error_free != !truth) {
      state.SkipWithError("reduction disagrees with direct evaluation");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
  }
  state.SetLabel(truth ? "QBF true => ambiguity error found"
                       : "QBF false => error-free");
}
BENCHMARK(BM_QbfViaErrorFreeness)->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
