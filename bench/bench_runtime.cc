// E1 — run-time interpreter throughput on the Figure 2 e-commerce
// service: scripted purchase sessions and random sessions. Establishes
// the substrate cost that every verification experiment builds on.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "fo/bytecode/compiler.h"
#include "fo/bytecode/vm.h"
#include "fo/evaluator.h"
#include "gallery/gallery.h"
#include "runtime/interpreter.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

UserChoice Button(const char* label) {
  UserChoice c;
  c.relation_choices["button"] = Tuple{V(label)};
  return c;
}

std::vector<UserChoice> PurchaseScript() {
  std::vector<UserChoice> script;
  UserChoice login = Button("login");
  login.constant_values["name"] = V("alice");
  login.constant_values["password"] = V("pw");
  script.push_back(login);
  script.push_back(Button("laptop"));
  UserChoice search = Button("search");
  search.relation_choices["laptopsearch"] =
      Tuple{V("4gb"), V("1tb"), V("13in")};
  script.push_back(search);
  UserChoice pick;
  pick.relation_choices["pickproduct"] = Tuple{V("p1"), V("100")};
  script.push_back(pick);
  script.push_back(Button("buy"));
  UserChoice pay = Button("submit");
  pay.relation_choices["payamount"] = Tuple{V("100")};
  script.push_back(pay);
  script.push_back(Button("confirmorder"));
  script.push_back(Button("logout"));
  return script;
}

void BM_PurchaseSession(benchmark::State& state) {
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceDatabase();
  Interpreter interp(&service, &db);
  int64_t steps = 0;
  for (auto _ : state) {
    ScriptedInputProvider provider(PurchaseScript());
    auto run = interp.Run(provider, 9);
    if (!run.ok() || run->reached_error) {
      state.SkipWithError("session failed");
      return;
    }
    steps += 9;
    benchmark::DoNotOptimize(run->trace.size());
  }
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PurchaseSession);

void BM_RandomSession(benchmark::State& state) {
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceDatabase();
  Interpreter interp(&service, &db);
  std::vector<Value> pool{V("alice"), V("pw"), V("Admin"), V("root")};
  const int kSteps = static_cast<int>(state.range(0));
  uint64_t seed = 0;
  int64_t steps = 0;
  for (auto _ : state) {
    RandomInputProvider provider(seed++, pool);
    auto run = interp.Run(provider, kSteps);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    steps += kSteps;
    benchmark::DoNotOptimize(run->trace.size());
  }
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RandomSession)->Arg(10)->Arg(50)->Arg(200);

void BM_SingleStepHP(benchmark::State& state) {
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceDatabase();
  Stepper stepper(&service, &db);
  Config initial = stepper.InitialConfig();
  UserChoice login = Button("login");
  login.constant_values["name"] = V("alice");
  login.constant_values["password"] = V("pw");
  for (auto _ : state) {
    auto out = stepper.Step(initial, login);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out->next.page);
  }
}
BENCHMARK(BM_SingleStepHP);

// --- Leaf-evaluation micro family -----------------------------------
//
// The same FO sentence evaluated by the compiled bytecode engine and by
// the tree-walking interpreter, over a chain-shaped guarded join whose
// closure arity scales with the benchmark argument:
//
//   exists x0..x{k-1} ( edge(x0,x1) & ... & edge(x{k-2},x{k-1})
//                       & !(x0 = x{k-1}) )
//
// on a 16-node edge cycle. This is the per-leaf hot loop of LTL
// verification with the context setup amortized away, so the
// compiled/interpreted real-time ratio (guarded in budgets_runtime.json)
// measures the engines themselves.

FormulaPtr ClosureChainFormula(int k) {
  auto var = [](int i) { return Term::Variable("x" + std::to_string(i)); };
  std::vector<FormulaPtr> conjs;
  for (int i = 0; i + 1 < k; ++i) {
    conjs.push_back(
        Formula::MakeAtom(Atom{"edge", false, {var(i), var(i + 1)}, {}}));
  }
  conjs.push_back(Formula::Not(Formula::Equals(var(0), var(k - 1))));
  std::vector<std::string> vars;
  for (int i = 0; i < k; ++i) vars.push_back("x" + std::to_string(i));
  return Formula::Exists(std::move(vars), Formula::And(std::move(conjs)));
}

Instance EdgeCycleInstance(int n) {
  Instance inst;
  (void)inst.EnsureRelation("edge", 2);
  for (int i = 0; i < n; ++i) {
    Value a = Value::Intern("d" + std::to_string(i));
    Value b = Value::Intern("d" + std::to_string((i + 1) % n));
    inst.MutableRelation("edge")->Insert({a, b});
    inst.AddDomainValue(a);
  }
  return inst;
}

void BM_LeafEvalCompiled(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Instance inst = EdgeCycleInstance(16);
  EvalContext ctx;
  ctx.AddLayer(&inst);
  FormulaPtr f = ClosureChainFormula(arity);
  auto prog = fobc::CompileBool(f);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = fobc::Execute(**prog, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_LeafEvalCompiled)->Arg(2)->Arg(3)->Arg(4);

void BM_LeafEvalInterp(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Instance inst = EdgeCycleInstance(16);
  EvalContext ctx;
  ctx.AddLayer(&inst);
  FormulaPtr f = ClosureChainFormula(arity);
  for (auto _ : state) {
    auto r = Evaluate(*f, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_LeafEvalInterp)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
