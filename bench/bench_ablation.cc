// Ablations for the design choices DESIGN.md calls out:
//
//  * error-freeness: the direct reachability search vs. the Lemma A.5
//    transformation + LTL route (same verdicts; the transformation pays
//    the Büchi product),
//  * Kripke construction: label-merged (Lemma A.12, sound for the
//    propositional class) vs. unmerged per-edge states,
//  * Prev_I tracking: rules-only tracking vs. tracking every input
//    relation (the configuration-graph blow-up the optimization avoids).

#include <benchmark/benchmark.h>

#include "ctl/ctl_check.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/abstraction.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/transform.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

void BM_ErrorFreeDirect(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  Instance db = LoginDatabase();
  ErrorFreeOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  for (auto _ : state) {
    auto r = CheckErrorFreeOnDatabase(service, db, options);
    if (!r.ok() || !r->error_free) {
      state.SkipWithError("expected error-free");
      return;
    }
  }
}
BENCHMARK(BM_ErrorFreeDirect)->Unit(benchmark::kMicrosecond);

void BM_ErrorFreeViaTransform(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  ErrorFreeTransform tr = std::move(TransformErrorFree(service)).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  options.require_input_bounded = false;
  LtlVerifier verifier(&tr.service, options);
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(tr.property, db);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the trap to stay unreachable");
      return;
    }
  }
}
BENCHMARK(BM_ErrorFreeViaTransform)->Unit(benchmark::kMicrosecond);

void BM_KripkeMerged(benchmark::State& state) {
  WebService abs =
      std::move(AbstractToPropositional(*BuildLoginService())).value();
  Instance db;
  (void)db.EnsureRelation("user", 0);
  db.MutableRelation("user")->SetBool(true);
  KripkeBuildOptions options;
  options.graph.constant_pool = {V("c0")};
  auto prop = ParseTemporalProperty("A G(E F(BYE))", &abs.vocab());
  for (auto _ : state) {
    auto kripke = BuildPropositionalKripke(abs, db, options);
    if (!kripke.ok()) {
      state.SkipWithError(kripke.status().ToString().c_str());
      return;
    }
    auto r = CtlHolds(*kripke, *prop->formula);
    if (!r.ok() || !*r) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["kripke_states"] = static_cast<double>(kripke->size());
  }
}
BENCHMARK(BM_KripkeMerged)->Unit(benchmark::kMicrosecond);

void BM_KripkeUnmerged(benchmark::State& state) {
  WebService abs =
      std::move(AbstractToPropositional(*BuildLoginService())).value();
  Instance db;
  (void)db.EnsureRelation("user", 0);
  db.MutableRelation("user")->SetBool(true);
  KripkeBuildOptions options;
  options.graph.constant_pool = {V("c0")};
  auto prop = ParseTemporalProperty("A G(E F(BYE))", &abs.vocab());
  for (auto _ : state) {
    auto kripke = BuildUnmergedKripke(abs, db, options);
    if (!kripke.ok()) {
      state.SkipWithError(kripke.status().ToString().c_str());
      return;
    }
    auto r = CtlHolds(*kripke, *prop->formula);
    if (!r.ok() || !*r) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["kripke_states"] = static_cast<double>(kripke->size());
  }
}
BENCHMARK(BM_KripkeUnmerged)->Unit(benchmark::kMicrosecond);

void BuildEcommerceGraph(benchmark::State& state, bool track_all_prev) {
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceSmallDatabase();
  for (auto _ : state) {
    Stepper stepper(&service, &db);
    if (!track_all_prev) {
      stepper.SetTrackedPrev(Stepper::PrevRelationsInRules(service));
    }
    ConfigGraphOptions options;
    options.constant_pool = {V("alice"), V("pw")};
    auto graph = BuildConfigGraph(stepper, options);
    if (!graph.ok()) {
      state.SkipWithError(graph.status().ToString().c_str());
      return;
    }
    state.counters["graph_nodes"] = static_cast<double>(graph->nodes.size());
    state.counters["graph_edges"] = static_cast<double>(graph->edges.size());
  }
}

void BM_ConfigGraphTrackedPrev(benchmark::State& state) {
  BuildEcommerceGraph(state, /*track_all_prev=*/false);
}
BENCHMARK(BM_ConfigGraphTrackedPrev)->Unit(benchmark::kMillisecond);

void BM_ConfigGraphAllPrev(benchmark::State& state) {
  BuildEcommerceGraph(state, /*track_all_prev=*/true);
}
BENCHMARK(BM_ConfigGraphAllPrev)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
