// E11 — LTL -> Büchi translation: automaton size and construction time
// versus formula size (the exponential front-end every linear-time
// verification pays once per property).

#include <benchmark/benchmark.h>

#include <string>

#include "automata/ltl_to_buchi.h"
#include "ltl/ltl_parser.h"

namespace wsv {
namespace {

// Nested untils: (p0 U (p1 U (... U pn))).
std::string NestedUntil(int n) {
  std::string text = "p" + std::to_string(n);
  for (int i = n - 1; i >= 0; --i) {
    text = "p" + std::to_string(i) + " U (" + text + ")";
  }
  return text;
}

// Conjunctions of response properties: G(p_i -> F q_i).
std::string Responses(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += " & ";
    text += "G(p" + std::to_string(i) + " -> F(q" + std::to_string(i) +
            "))";
  }
  return text;
}

void RunTranslation(benchmark::State& state, const std::string& text) {
  auto prop = ParseTemporalProperty(text, nullptr);
  if (!prop.ok()) {
    state.SkipWithError(prop.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto gba = LtlToBuchi(*prop->formula);
    if (!gba.ok()) {
      state.SkipWithError(gba.status().ToString().c_str());
      return;
    }
    BuchiAutomaton aut = gba->Degeneralize();
    state.counters["gba_states"] = static_cast<double>(gba->size());
    state.counters["buchi_states"] = static_cast<double>(aut.size());
    benchmark::DoNotOptimize(aut.size());
  }
}

void BM_BuchiNestedUntil(benchmark::State& state) {
  RunTranslation(state, NestedUntil(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BuchiNestedUntil)->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_BuchiResponses(benchmark::State& state) {
  RunTranslation(state, Responses(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BuchiResponses)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_BuchiPaperProperty(benchmark::State& state) {
  // The shape of Example 3.2's property (1).
  RunTranslation(state, "G(!p) | F(p & F(q))");
}
BENCHMARK(BM_BuchiPaperProperty)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
