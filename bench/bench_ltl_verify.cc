// E2 + E3 — LTL-FO verification (Theorem 3.5).
//
// E2 regenerates the paper's two flagship properties on the e-commerce
// service: the navigational eventuality (1) of Example 3.2 (violated)
// and pay-before-ship (4) of Example 3.4 (holds).
//
// E3 exhibits the PSPACE shape: verification time grows exponentially in
// the input-constant pool size and the database bound (the configuration
// graph is the exponential object), while the per-edge work stays
// polynomial. The node counters make the growth visible in the output.

#include <benchmark/benchmark.h>

#include <optional>

#include "analysis/slice.h"
#include "gallery/gallery.h"
#include "ws/spec_parser.h"
#include "ltl/ltl_parser.h"
#include "obs/report.h"
#include "verify/error_free.h"
#include "verify/ltl_verifier.h"
#include "verify/parallel.h"

namespace wsv {
namespace {

Value V(const char* s) { return Value::Intern(s); }

// Folds the verifier's own telemetry into the benchmark's user counters,
// so `make bench_ltl_verify_json` carries the memo hit rate, graph
// expansion, and product sizes into BENCH_ltl_verify.json alongside the
// timings. Call obs::ResetMetrics() before the timing loop so the
// snapshot covers exactly this benchmark's iterations.
void MergeObsCounters(benchmark::State& state) {
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  auto put = [&](const char* key, const char* counter) {
    state.counters[key] = benchmark::Counter(
        static_cast<double>(snap.CounterValue(counter)),
        benchmark::Counter::kAvgIterations);
  };
  put("obs_nodes_expanded", "config_graph/nodes_expanded");
  put("obs_product_states", "ltl/product_states");
  put("obs_products_built", "ltl/products_built");
  put("obs_valuations_checked", "ltl/valuations_checked");
  put("obs_valuation_classes", "ltl/valuation_classes");
  put("obs_class_hits", "ltl/class_hits");
  put("obs_products_skipped", "ltl/products_skipped");
  put("obs_leaf_memo_hits", "ltl/leaf_memo_hits");
  put("obs_leaf_memo_misses", "ltl/leaf_memo_misses");
  put("obs_otf_states_created", "ltl/otf_states_created");
  put("obs_otf_early_exits", "ltl/otf_early_exits");
  put("obs_bytecode_compiles", "fo/bytecode_compiles");
  put("obs_bytecode_cache_hits", "fo/bytecode_cache_hits");
  put("obs_bytecode_steps", "fo/bytecode_steps");
  put("obs_bytecode_execs", "fo/bytecode_execs");
  put("obs_interp_evals", "fo/interp_evals");
  // Cone-of-influence slicing: dependence-graph size, what the slicer
  // dropped, and how often the sliced probe bailed at a lasso. The
  // ratio row makes the reduction visible at a glance.
  put("obs_depgraph_nodes", "depgraph/nodes");
  put("obs_depgraph_edges", "depgraph/edges");
  put("obs_slice_cone_size", "slice/cone_size");
  put("obs_slice_rules_dropped", "slice/rules_dropped");
  put("obs_slice_relations_dropped", "slice/relations_dropped");
  put("obs_slice_inputs_dropped", "slice/inputs_dropped");
  put("obs_slice_sliced", "slice/sliced");
  put("obs_slice_lasso_bailouts", "slice/lasso_bailouts");
  // Directed-search strategies: restart attempts exhausted, successors
  // dropped by commuting-input pruning, heuristic evaluations spent.
  put("obs_search_restarts", "search/restarts");
  put("obs_search_pruned_successors", "search/pruned_successors");
  put("obs_search_heuristic_evals", "search/heuristic_evals");
  uint64_t cone = snap.CounterValue("slice/cone_size");
  uint64_t dropped = snap.CounterValue("slice/relations_dropped");
  if (cone + dropped > 0) {
    state.counters["obs_slice_cone_ratio"] =
        static_cast<double>(cone) / static_cast<double>(cone + dropped);
  }
  // Peak product size: the max of the per-search state-count histogram
  // (not averaged — it is already a max over the snapshot window).
  auto hist = snap.histograms.find("ltl/peak_product_states");
  if (hist != snap.histograms.end()) {
    state.counters["obs_peak_product_states"] =
        static_cast<double>(hist->second.max);
  }
  double rate = obs::LeafMemoHitRate(snap);
  if (rate >= 0) state.counters["obs_memo_hit_rate"] = rate;
  double collapse = obs::ValuationCollapseRate(snap);
  if (collapse >= 0) state.counters["obs_collapse_rate"] = collapse;
  double compiled = obs::BytecodeCompiledShare(snap);
  if (compiled >= 0) state.counters["obs_bytecode_compiled_share"] = compiled;
  double cache_rate = obs::ProgramCacheHitRate(snap);
  if (cache_rate >= 0) {
    state.counters["obs_program_cache_hit_rate"] = cache_rate;
  }
  // Live-memory gauges: occupancy at snapshot time, not per-iteration
  // work, so they land as plain values ("mem/x_bytes" -> "mem_x_bytes").
  for (const auto& [name, value] : snap.gauges) {
    std::string key = name;
    for (char& c : key) {
      if (c == '/') c = '_';
    }
    state.counters[key] = static_cast<double>(value);
  }
}

// --- E2: the paper's properties on the running example. ---------------

// Property 1 runs in both modes so the _Eager row is the A/B baseline
// for the on-the-fly early exit (tools/bench_guard.py compares them).
// The _NoSlice row is the baseline for the cone-of-influence slicer: on
// this VIOLATED property the sliced probe is pure overhead (the first
// valuation already has a lasso), so the row bounds that overhead. The
// _Directed row swaps the CVWY nested DFS for the Büchi-distance
// best-first hunter — the A/B pair for the directed-search guard rule.
void RunProperty1(benchmark::State& state, bool eager, bool slice = true,
                  const char* strategy = "dfs") {
  std::optional<analysis::ScopedDisableSlice> no_slice;
  if (!slice) no_slice.emplace();
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.force_eager = eager;
  options.search.strategy = strategy;
  LtlVerifier verifier(&service, options);
  auto prop = ParseTemporalProperty("G(!PIP) | F(PIP & F(CC))",
                                    &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok() || r->holds) {
      state.SkipWithError("expected a violation");
      return;
    }
    state.counters["graph_nodes"] =
        static_cast<double>(r->total_graph_nodes);
  }
  MergeObsCounters(state);
  state.SetLabel("VIOLATED (paper: eventuality not enforced)");
}

void BM_Property1_Ecommerce(benchmark::State& state) {
  RunProperty1(state, /*eager=*/false);
}
BENCHMARK(BM_Property1_Ecommerce)->Unit(benchmark::kMillisecond);

void BM_Property1_Ecommerce_Eager(benchmark::State& state) {
  RunProperty1(state, /*eager=*/true);
}
BENCHMARK(BM_Property1_Ecommerce_Eager)->Unit(benchmark::kMillisecond);

void BM_Property1_Ecommerce_NoSlice(benchmark::State& state) {
  RunProperty1(state, /*eager=*/false, /*slice=*/false);
}
BENCHMARK(BM_Property1_Ecommerce_NoSlice)->Unit(benchmark::kMillisecond);

void BM_Property1_Directed(benchmark::State& state) {
  RunProperty1(state, /*eager=*/false, /*slice=*/true, "directed");
}
BENCHMARK(BM_Property1_Directed)->Unit(benchmark::kMillisecond);

// --- E2c: deep-lasso counterexample hunting. ---------------------------
//
// A decoy service built for the strategy A/B: the home page offers a
// fan of "go" buttons leading into a long violation-free page chain,
// plus one late-ordered "zz_bug" button leading to the violating sink.
// CVWY explores successors in order, so it sweeps the whole decoy chain
// before trying the bug button; the directed hunter pops the accepting
// product state (Büchi distance 0) the moment it is discovered and
// never walks the chain. The three rows are the A/B/B' family for the
// directed-search budget rules.
std::string DeepDecoySpecText(int fanout, int chain) {
  std::string s =
      "service DeepDecoy;\n\n"
      "database user(uname);\n"
      "input button(label);\n\n"
      "page HP {\n  options button(x) :- ";
  for (int i = 0; i < fanout; ++i) {
    s += "x = \"go" + std::to_string(i) + "\" | ";
  }
  s += "x = \"zz_bug\";\n  target D0 :- ";
  for (int i = 0; i < fanout; ++i) {
    if (i > 0) s += " | ";
    s += "button(\"go" + std::to_string(i) + "\")";
  }
  s += ";\n  target MP :- button(\"zz_bug\");\n}\n\n";
  for (int j = 0; j < chain; ++j) {
    s += "page D" + std::to_string(j) +
         " {\n  options button(x) :- x = \"next\";\n  target D" +
         std::to_string(j + 1) + " :- button(\"next\");\n}\n";
  }
  s += "page D" + std::to_string(chain) + " {\n}\n";
  s += "page MP {\n}\n\nhome HP;\nerror ERR;\n";
  return s;
}

void RunDeepLasso(benchmark::State& state, const char* strategy) {
  WebService service =
      std::move(ParseServiceSpec(DeepDecoySpecText(/*fanout=*/4,
                                                   /*chain=*/40)))
          .value();
  Instance db;
  Status st = db.AddFact("user", {V("alice")});
  (void)st;
  LtlVerifyOptions options;
  options.search.strategy = strategy;
  LtlVerifier verifier(&service, options);
  auto prop = ParseTemporalProperty("G(!MP)", &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok() || r->holds) {
      state.SkipWithError("expected a violation");
      return;
    }
  }
  MergeObsCounters(state);
  state.SetLabel("VIOLATED (bug button ordered after the decoy chain)");
}

void BM_DeepLasso_Dfs(benchmark::State& state) {
  RunDeepLasso(state, "dfs");
}
BENCHMARK(BM_DeepLasso_Dfs)->Unit(benchmark::kMillisecond);

void BM_DeepLasso_Directed(benchmark::State& state) {
  RunDeepLasso(state, "directed");
}
BENCHMARK(BM_DeepLasso_Directed)->Unit(benchmark::kMillisecond);

void BM_DeepLasso_Restart(benchmark::State& state) {
  RunDeepLasso(state, "restart");
}
BENCHMARK(BM_DeepLasso_Restart)->Unit(benchmark::kMillisecond);

// Property 4 holds, so slicing pays off in full: the sliced graph alone
// proves the absence of accepting lassos and the unsliced product is
// never built. The _NoSlice row is the A/B baseline for the guard's
// cone-reduction compare rules.
void RunProperty4(benchmark::State& state, bool eager, bool slice = true,
                  const char* strategy = "dfs") {
  std::optional<analysis::ScopedDisableSlice> no_slice;
  if (!slice) no_slice.emplace();
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  options.force_eager = eager;
  options.search.strategy = strategy;
  LtlVerifier verifier(&service, options);
  auto prop = ParseTemporalProperty(
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))",
      &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["graph_nodes"] =
        static_cast<double>(r->total_graph_nodes);
    state.counters["product_states"] =
        static_cast<double>(r->total_product_states);
  }
  MergeObsCounters(state);
  state.SetLabel("HOLDS (paper: shipped products are paid for)");
}

void BM_Property4_PayBeforeShip(benchmark::State& state) {
  RunProperty4(state, /*eager=*/false);
}
BENCHMARK(BM_Property4_PayBeforeShip)->Unit(benchmark::kMillisecond);

void BM_Property4_PayBeforeShip_Eager(benchmark::State& state) {
  RunProperty4(state, /*eager=*/true);
}
BENCHMARK(BM_Property4_PayBeforeShip_Eager)->Unit(benchmark::kMillisecond);

void BM_Property4_PayBeforeShip_NoSlice(benchmark::State& state) {
  RunProperty4(state, /*eager=*/false, /*slice=*/false);
}
BENCHMARK(BM_Property4_PayBeforeShip_NoSlice)->Unit(benchmark::kMillisecond);

// Anti-inversion row: a HOLDS sweep has no lasso to hunt, so the
// directed strategy must cost no extra product states over CVWY (both
// exhaust the same product). Guarded at ratio <= 1.0.
void BM_Property4_PayBeforeShip_Directed(benchmark::State& state) {
  RunProperty4(state, /*eager=*/false, /*slice=*/true, "directed");
}
BENCHMARK(BM_Property4_PayBeforeShip_Directed)
    ->Unit(benchmark::kMillisecond);

// --- E2b: the parallel engine, /jobs:1 vs /jobs:N. ---------------------
//
// The jobs:1 rows run the serial verifier (the parallel front end
// delegates); higher job counts fan the same sweep over the pool with
// identical verdicts. Speedup scales with hardware threads — on a
// single-core host the rows coincide (modulo pool overhead).

// Pay-before-ship on the fixed small database: 2 closure variables x 3
// candidates = 9 valuations, chunked across workers over one shared
// configuration graph. Also exercises the FO-leaf memo.
void BM_Property4_PayBeforeShip_Jobs(benchmark::State& state) {
  WebService service = std::move(BuildEcommerceService()).value();
  Instance db = EcommerceSmallDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  options.require_input_bounded = false;
  options.closure_candidates = {V("p1"), V("100"), V("alice")};
  ParallelLtlVerifier verifier(&service, options,
                               static_cast<int>(state.range(0)));
  auto prop = ParseTemporalProperty(
      "forall pid, price . ((UPP & payamount(price) & button(\"submit\") "
      "& pick(pid, price) & prod_prices(pid, price)) "
      "B !(conf(name, price) & ship(name, pid)))",
      &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
  }
  MergeObsCounters(state);
}
BENCHMARK(BM_Property4_PayBeforeShip_Jobs)
    ->ArgName("jobs")->Arg(1)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Database-level fan-out: the login service verified over every database
// within the bound (the property holds, so the sweep is exhaustive — the
// worst case for the enumerator and the best case for parallelism).
void BM_LoginEnumSweep_Jobs(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = 1;
  options.graph.constant_pool = {V("d0")};
  ParallelLtlVerifier verifier(&service, options,
                               static_cast<int>(state.range(0)));
  auto prop = ParseTemporalProperty("G(!error(\"no such page\"))",
                                    &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.Verify(*prop);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
  }
  MergeObsCounters(state);
}
BENCHMARK(BM_LoginEnumSweep_Jobs)
    ->ArgName("jobs")->Arg(1)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- E3: scaling shape. -------------------------------------------------

// Verification time vs. input-constant pool size on the login service:
// the configuration graph grows with every new candidate credential.
void BM_ScalePoolSize(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw")};
  for (int i = 0; i < state.range(0); ++i) {
    options.graph.constant_pool.push_back(
        V(("extra" + std::to_string(i)).c_str()));
  }
  LtlVerifier verifier(&service, options);
  auto prop = ParseTemporalProperty("G(!CP | logged_in)", &service.vocab());
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["graph_nodes"] =
        static_cast<double>(r->total_graph_nodes);
  }
}
BENCHMARK(BM_ScalePoolSize)->DenseRange(0, 8, 2)
    ->Unit(benchmark::kMillisecond);

// Error-freeness over *all* databases within a growing bound (the
// enumeration is the exponential factor of Theorem 3.5's search space).
void BM_ScaleDatabaseBound(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  ErrorFreeOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = static_cast<int>(state.range(0));
  options.graph.constant_pool = {V("d0")};
  for (auto _ : state) {
    auto r = CheckErrorFree(service, options);
    if (!r.ok() || !r->error_free) {
      state.SkipWithError("expected error-free");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
  }
}
BENCHMARK(BM_ScaleDatabaseBound)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

// Universal closure arity: each additional closure variable multiplies
// the valuation space by the candidate count. The telemetry merge makes
// the FO-leaf memo visible: later valuations re-resolve leaves whose
// projected bindings repeat, so the hit count must be nonzero here
// (bench-guarded).
void BM_ScaleClosureArity(benchmark::State& state) {
  WebService service = std::move(BuildLoginService()).value();
  Instance db = LoginDatabase();
  LtlVerifyOptions options;
  options.graph.constant_pool = {V("alice"), V("pw"), V("u0")};
  LtlVerifier verifier(&service, options);
  // One G-leaf per closure variable: a leaf's truth column depends only
  // on the valuation's projection onto its own variable, so with k >= 2
  // variables the sweep re-resolves each leaf |cand|^(k-1) times per
  // projected value — the memo's bread and butter.
  std::string vars = "m0";
  std::string body = "G(!error(m0) | logged_in | true)";
  for (int i = 1; i < state.range(0); ++i) {
    vars += ", m" + std::to_string(i);
    body += " & G(!error(m" + std::to_string(i) + ") | logged_in | true)";
  }
  auto prop = ParseTemporalProperty("forall " + vars + " . (" + body + ")",
                                    &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.VerifyOnDatabase(*prop, db);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->holds);
  }
  MergeObsCounters(state);
}
BENCHMARK(BM_ScaleClosureArity)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

// A HOLDS family where the exhaustive search cannot early-exit: the
// login safety property over every database within a growing bound. The
// on-the-fly and eager rows must agree on verdicts; the guard asserts
// the lazy path never *creates* more product states than the eager one
// materializes (no state-count inversion on HOLDS).
void RunLoginHoldsSweep(benchmark::State& state, bool eager,
                        bool slice = true) {
  std::optional<analysis::ScopedDisableSlice> no_slice;
  if (!slice) no_slice.emplace();
  WebService service = std::move(BuildLoginService()).value();
  LtlVerifyOptions options;
  options.db.fresh_values = 1;
  options.db.max_tuples_per_relation = static_cast<int>(state.range(0));
  options.graph.constant_pool = {V("d0")};
  options.force_eager = eager;
  LtlVerifier verifier(&service, options);
  auto prop = ParseTemporalProperty("G(!CP | logged_in)", &service.vocab());
  obs::ResetMetrics();
  for (auto _ : state) {
    auto r = verifier.Verify(*prop);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
    state.counters["product_states"] =
        static_cast<double>(r->total_product_states);
  }
  MergeObsCounters(state);
}

void BM_LoginHoldsBound(benchmark::State& state) {
  RunLoginHoldsSweep(state, /*eager=*/false);
}
BENCHMARK(BM_LoginHoldsBound)->ArgName("bound")->DenseRange(1, 2, 1)
    ->Unit(benchmark::kMillisecond);

void BM_LoginHoldsBound_Eager(benchmark::State& state) {
  RunLoginHoldsSweep(state, /*eager=*/true);
}
BENCHMARK(BM_LoginHoldsBound_Eager)->ArgName("bound")->DenseRange(1, 2, 1)
    ->Unit(benchmark::kMillisecond);

void BM_LoginHoldsBound_NoSlice(benchmark::State& state) {
  RunLoginHoldsSweep(state, /*eager=*/false, /*slice=*/false);
}
BENCHMARK(BM_LoginHoldsBound_NoSlice)->ArgName("bound")->DenseRange(1, 2, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
