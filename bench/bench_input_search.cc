// E10 — Web services with input-driven search (Theorem 4.9, Example 4.8,
// Figure 1).
//
// The catalog service is verified over hierarchies of growing depth; the
// label-Kripke grows linearly with the reachable category graph, and CTL
// checking stays fast. The CTL-satisfiability tableau — the oracle the
// theorem's EXPTIME reduction targets — is swept separately over formula
// size, exhibiting its exponential tableau growth.

#include <benchmark/benchmark.h>

#include <string>

#include "ctl/ctl_sat.h"
#include "gallery/gallery.h"
#include "ltl/ltl_parser.h"
#include "verify/input_search_verifier.h"

namespace wsv {
namespace {

void BM_SearchVerifyDepth(benchmark::State& state) {
  WebService service =
      std::move(BuildInputDrivenSearchService(CatalogSearchSpec())).value();
  Instance db = CatalogSearchDatabase(static_cast<int>(state.range(0)));
  auto prop = ParseTemporalProperty(
      "I(\"products\") -> E F(I(\"d1\"))", &service.vocab());
  KripkeBuildOptions options;
  for (auto _ : state) {
    auto r = VerifyInputDrivenSearchOnDatabase(service, *prop, db, options);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["kripke_states"] =
        static_cast<double>(r->total_kripke_states);
  }
}
BENCHMARK(BM_SearchVerifyDepth)->DenseRange(0, 24, 6)
    ->Unit(benchmark::kMillisecond);

void BM_SearchVerifyCtlStar(benchmark::State& state) {
  WebService service =
      std::move(BuildInputDrivenSearchService(CatalogSearchSpec())).value();
  Instance db = CatalogSearchDatabase(static_cast<int>(state.range(0)));
  auto prop = ParseTemporalProperty(
      "I(\"products\") -> E (F(I(\"d1\")) & F(G(new_sel)))",
      &service.vocab());
  KripkeBuildOptions options;
  for (auto _ : state) {
    auto r = VerifyInputDrivenSearchOnDatabase(service, *prop, db, options);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("expected the property to hold");
      return;
    }
    state.counters["kripke_states"] =
        static_cast<double>(r->total_kripke_states);
  }
}
BENCHMARK(BM_SearchVerifyCtlStar)->DenseRange(0, 12, 6)
    ->Unit(benchmark::kMillisecond);

// The CTL satisfiability tableau over formulas with a growing number of
// eventualities: 2^(elementary subformulas) states.
void BM_CtlSatTableau(benchmark::State& state) {
  std::string text = "E F(p0)";
  for (int i = 1; i < state.range(0); ++i) {
    text += " & E F(p" + std::to_string(i) + ")";
  }
  text += " & A G(p0 -> !p1)";
  auto prop = ParseTemporalProperty(text, nullptr);
  for (auto _ : state) {
    auto r = CtlSatisfiable(*prop->formula);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    state.counters["tableau_states"] =
        static_cast<double>(r->tableau_states);
    benchmark::DoNotOptimize(r->satisfiable);
  }
}
BENCHMARK(BM_CtlSatTableau)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMillisecond);

// An unsatisfiable family: the tableau must be pruned to emptiness.
void BM_CtlSatUnsat(benchmark::State& state) {
  std::string text = "A G(!q)";
  for (int i = 0; i < state.range(0); ++i) {
    text += " & A F(p" + std::to_string(i) + ")";
  }
  text += " & A G(p0 -> E F(q))  & A F(p0)";
  auto prop = ParseTemporalProperty(text, nullptr);
  for (auto _ : state) {
    auto r = CtlSatisfiable(*prop->formula);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    if (r->satisfiable) {
      state.SkipWithError("expected unsatisfiable");
      return;
    }
  }
}
BENCHMARK(BM_CtlSatUnsat)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
