// E5 — the Turing machine reduction (Theorem 3.7): relaxing the
// input-boundedness of options rules lets services simulate TMs, so
// verification becomes undecidable. The bounded verifier still decides
// each *bounded* instance; its cost grows quickly with the tape budget
// (fresh database cells), exhibiting why no uniform bound can exist.

#include <benchmark/benchmark.h>

#include "reductions/turing.h"
#include "verify/ltl_verifier.h"

namespace wsv {
namespace {

// A machine that writes k ones moving right, then halts: halting needs
// k+1 tape cells, i.e. a database with that many allocatable values.
TuringMachine CountingMachine(int k) {
  TuringMachine tm;
  for (int i = 0; i < k; ++i) {
    tm.moves.push_back({"q" + std::to_string(i), "b", "1",
                        "q" + std::to_string(i + 1),
                        TuringMachine::Dir::kRight});
  }
  tm.moves.push_back({"q" + std::to_string(k), "b", "b", "qH",
                      TuringMachine::Dir::kStay});
  return tm;
}

void BM_TmHaltingDetection(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  TuringMachine tm = CountingMachine(k);
  if (!SimulateTm(tm, 100)) {
    state.SkipWithError("machine should halt");
    return;
  }
  WebService service = std::move(BuildTuringService(tm)).value();
  TemporalProperty prop =
      std::move(TuringNonHaltingProperty(tm, service)).value();
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  options.db.fresh_values = k + 1;
  options.db.max_tuples_per_relation = k + 2;
  options.extra_constant_values = 0;
  LtlVerifier verifier(&service, options);
  for (auto _ : state) {
    auto r = verifier.Verify(prop);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    if (r->holds) {
      state.SkipWithError("halting machine not detected");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
    state.counters["graph_nodes"] =
        static_cast<double>(r->total_graph_nodes);
  }
  state.SetLabel("halting state reached within bounds");
}
BENCHMARK(BM_TmHaltingDetection)->DenseRange(1, 2, 1)
    ->Unit(benchmark::kMillisecond);

void BM_TmLoopingMachine(benchmark::State& state) {
  TuringMachine tm;
  tm.moves.push_back({"q0", "b", "b", "q0", TuringMachine::Dir::kStay});
  WebService service = std::move(BuildTuringService(tm)).value();
  TemporalProperty prop =
      std::move(TuringNonHaltingProperty(tm, service)).value();
  LtlVerifyOptions options;
  options.require_input_bounded = false;
  options.db.fresh_values = static_cast<int>(state.range(0));
  options.db.max_tuples_per_relation = static_cast<int>(state.range(0)) + 1;
  options.extra_constant_values = 0;
  LtlVerifier verifier(&service, options);
  for (auto _ : state) {
    auto r = verifier.Verify(prop);
    if (!r.ok() || !r->holds) {
      state.SkipWithError("looping machine must satisfy the property");
      return;
    }
    state.counters["databases"] =
        static_cast<double>(r->databases_checked);
  }
  state.SetLabel("no halting configuration in any bounded run");
}
BENCHMARK(BM_TmLoopingMachine)->DenseRange(1, 2, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsv

BENCHMARK_MAIN();
