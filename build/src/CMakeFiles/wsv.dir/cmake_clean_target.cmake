file(REMOVE_RECURSE
  "libwsv.a"
)
