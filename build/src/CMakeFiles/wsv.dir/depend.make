# Empty dependencies file for wsv.
# This may be replaced when dependencies are built.
