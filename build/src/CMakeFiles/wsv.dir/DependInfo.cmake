
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/buchi.cc" "src/CMakeFiles/wsv.dir/automata/buchi.cc.o" "gcc" "src/CMakeFiles/wsv.dir/automata/buchi.cc.o.d"
  "/root/repo/src/automata/emptiness.cc" "src/CMakeFiles/wsv.dir/automata/emptiness.cc.o" "gcc" "src/CMakeFiles/wsv.dir/automata/emptiness.cc.o.d"
  "/root/repo/src/automata/ltl_to_buchi.cc" "src/CMakeFiles/wsv.dir/automata/ltl_to_buchi.cc.o" "gcc" "src/CMakeFiles/wsv.dir/automata/ltl_to_buchi.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/wsv.dir/common/status.cc.o" "gcc" "src/CMakeFiles/wsv.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/wsv.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/wsv.dir/common/str_util.cc.o.d"
  "/root/repo/src/ctl/ctl.cc" "src/CMakeFiles/wsv.dir/ctl/ctl.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ctl/ctl.cc.o.d"
  "/root/repo/src/ctl/ctl_check.cc" "src/CMakeFiles/wsv.dir/ctl/ctl_check.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ctl/ctl_check.cc.o.d"
  "/root/repo/src/ctl/ctl_sat.cc" "src/CMakeFiles/wsv.dir/ctl/ctl_sat.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ctl/ctl_sat.cc.o.d"
  "/root/repo/src/ctl/ctl_star_check.cc" "src/CMakeFiles/wsv.dir/ctl/ctl_star_check.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ctl/ctl_star_check.cc.o.d"
  "/root/repo/src/ctl/kripke.cc" "src/CMakeFiles/wsv.dir/ctl/kripke.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ctl/kripke.cc.o.d"
  "/root/repo/src/fo/etc.cc" "src/CMakeFiles/wsv.dir/fo/etc.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/etc.cc.o.d"
  "/root/repo/src/fo/evaluator.cc" "src/CMakeFiles/wsv.dir/fo/evaluator.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/evaluator.cc.o.d"
  "/root/repo/src/fo/formula.cc" "src/CMakeFiles/wsv.dir/fo/formula.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/formula.cc.o.d"
  "/root/repo/src/fo/input_bounded.cc" "src/CMakeFiles/wsv.dir/fo/input_bounded.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/input_bounded.cc.o.d"
  "/root/repo/src/fo/lexer.cc" "src/CMakeFiles/wsv.dir/fo/lexer.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/lexer.cc.o.d"
  "/root/repo/src/fo/parser.cc" "src/CMakeFiles/wsv.dir/fo/parser.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/parser.cc.o.d"
  "/root/repo/src/fo/qf.cc" "src/CMakeFiles/wsv.dir/fo/qf.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/qf.cc.o.d"
  "/root/repo/src/fo/rewrite.cc" "src/CMakeFiles/wsv.dir/fo/rewrite.cc.o" "gcc" "src/CMakeFiles/wsv.dir/fo/rewrite.cc.o.d"
  "/root/repo/src/gallery/gallery.cc" "src/CMakeFiles/wsv.dir/gallery/gallery.cc.o" "gcc" "src/CMakeFiles/wsv.dir/gallery/gallery.cc.o.d"
  "/root/repo/src/ltl/ltl.cc" "src/CMakeFiles/wsv.dir/ltl/ltl.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ltl/ltl.cc.o.d"
  "/root/repo/src/ltl/ltl_parser.cc" "src/CMakeFiles/wsv.dir/ltl/ltl_parser.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ltl/ltl_parser.cc.o.d"
  "/root/repo/src/ltl/run_semantics.cc" "src/CMakeFiles/wsv.dir/ltl/run_semantics.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ltl/run_semantics.cc.o.d"
  "/root/repo/src/reductions/fdid.cc" "src/CMakeFiles/wsv.dir/reductions/fdid.cc.o" "gcc" "src/CMakeFiles/wsv.dir/reductions/fdid.cc.o.d"
  "/root/repo/src/reductions/fovalidity.cc" "src/CMakeFiles/wsv.dir/reductions/fovalidity.cc.o" "gcc" "src/CMakeFiles/wsv.dir/reductions/fovalidity.cc.o.d"
  "/root/repo/src/reductions/qbf.cc" "src/CMakeFiles/wsv.dir/reductions/qbf.cc.o" "gcc" "src/CMakeFiles/wsv.dir/reductions/qbf.cc.o.d"
  "/root/repo/src/reductions/turing.cc" "src/CMakeFiles/wsv.dir/reductions/turing.cc.o" "gcc" "src/CMakeFiles/wsv.dir/reductions/turing.cc.o.d"
  "/root/repo/src/relational/instance.cc" "src/CMakeFiles/wsv.dir/relational/instance.cc.o" "gcc" "src/CMakeFiles/wsv.dir/relational/instance.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/wsv.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/wsv.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/wsv.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/wsv.dir/relational/value.cc.o.d"
  "/root/repo/src/runtime/config.cc" "src/CMakeFiles/wsv.dir/runtime/config.cc.o" "gcc" "src/CMakeFiles/wsv.dir/runtime/config.cc.o.d"
  "/root/repo/src/runtime/interpreter.cc" "src/CMakeFiles/wsv.dir/runtime/interpreter.cc.o" "gcc" "src/CMakeFiles/wsv.dir/runtime/interpreter.cc.o.d"
  "/root/repo/src/runtime/successor.cc" "src/CMakeFiles/wsv.dir/runtime/successor.cc.o" "gcc" "src/CMakeFiles/wsv.dir/runtime/successor.cc.o.d"
  "/root/repo/src/verify/abstraction.cc" "src/CMakeFiles/wsv.dir/verify/abstraction.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/abstraction.cc.o.d"
  "/root/repo/src/verify/config_graph.cc" "src/CMakeFiles/wsv.dir/verify/config_graph.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/config_graph.cc.o.d"
  "/root/repo/src/verify/db_enum.cc" "src/CMakeFiles/wsv.dir/verify/db_enum.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/db_enum.cc.o.d"
  "/root/repo/src/verify/error_free.cc" "src/CMakeFiles/wsv.dir/verify/error_free.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/error_free.cc.o.d"
  "/root/repo/src/verify/ltl_verifier.cc" "src/CMakeFiles/wsv.dir/verify/ltl_verifier.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/ltl_verifier.cc.o.d"
  "/root/repo/src/verify/search_verifier.cc" "src/CMakeFiles/wsv.dir/verify/search_verifier.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/search_verifier.cc.o.d"
  "/root/repo/src/verify/transform.cc" "src/CMakeFiles/wsv.dir/verify/transform.cc.o" "gcc" "src/CMakeFiles/wsv.dir/verify/transform.cc.o.d"
  "/root/repo/src/ws/builder.cc" "src/CMakeFiles/wsv.dir/ws/builder.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/builder.cc.o.d"
  "/root/repo/src/ws/classify.cc" "src/CMakeFiles/wsv.dir/ws/classify.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/classify.cc.o.d"
  "/root/repo/src/ws/data_parser.cc" "src/CMakeFiles/wsv.dir/ws/data_parser.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/data_parser.cc.o.d"
  "/root/repo/src/ws/rules.cc" "src/CMakeFiles/wsv.dir/ws/rules.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/rules.cc.o.d"
  "/root/repo/src/ws/service.cc" "src/CMakeFiles/wsv.dir/ws/service.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/service.cc.o.d"
  "/root/repo/src/ws/spec_parser.cc" "src/CMakeFiles/wsv.dir/ws/spec_parser.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/spec_parser.cc.o.d"
  "/root/repo/src/ws/validate.cc" "src/CMakeFiles/wsv.dir/ws/validate.cc.o" "gcc" "src/CMakeFiles/wsv.dir/ws/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
