# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/fo_test[1]_include.cmake")
include("/root/repo/build/tests/ws_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/ltl_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/ctl_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/etc_test[1]_include.cmake")
include("/root/repo/build/tests/qf_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
