# Empty dependencies file for ws_test.
# This may be replaced when dependencies are built.
