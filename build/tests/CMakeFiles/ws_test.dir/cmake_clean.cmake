file(REMOVE_RECURSE
  "CMakeFiles/ws_test.dir/ws_test.cc.o"
  "CMakeFiles/ws_test.dir/ws_test.cc.o.d"
  "ws_test"
  "ws_test.pdb"
  "ws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
