file(REMOVE_RECURSE
  "CMakeFiles/etc_test.dir/etc_test.cc.o"
  "CMakeFiles/etc_test.dir/etc_test.cc.o.d"
  "etc_test"
  "etc_test.pdb"
  "etc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
