# Empty dependencies file for etc_test.
# This may be replaced when dependencies are built.
