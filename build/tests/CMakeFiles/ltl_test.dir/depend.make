# Empty dependencies file for ltl_test.
# This may be replaced when dependencies are built.
