file(REMOVE_RECURSE
  "CMakeFiles/ltl_test.dir/ltl_test.cc.o"
  "CMakeFiles/ltl_test.dir/ltl_test.cc.o.d"
  "ltl_test"
  "ltl_test.pdb"
  "ltl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
