# Empty compiler generated dependencies file for qf_test.
# This may be replaced when dependencies are built.
