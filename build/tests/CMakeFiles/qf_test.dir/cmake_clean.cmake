file(REMOVE_RECURSE
  "CMakeFiles/qf_test.dir/qf_test.cc.o"
  "CMakeFiles/qf_test.dir/qf_test.cc.o.d"
  "qf_test"
  "qf_test.pdb"
  "qf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
