# Empty compiler generated dependencies file for automata_test.
# This may be replaced when dependencies are built.
