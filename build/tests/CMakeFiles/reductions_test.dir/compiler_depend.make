# Empty compiler generated dependencies file for reductions_test.
# This may be replaced when dependencies are built.
