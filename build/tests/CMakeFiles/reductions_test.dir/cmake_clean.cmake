file(REMOVE_RECURSE
  "CMakeFiles/reductions_test.dir/reductions_test.cc.o"
  "CMakeFiles/reductions_test.dir/reductions_test.cc.o.d"
  "reductions_test"
  "reductions_test.pdb"
  "reductions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
