file(REMOVE_RECURSE
  "CMakeFiles/fo_test.dir/fo_test.cc.o"
  "CMakeFiles/fo_test.dir/fo_test.cc.o.d"
  "fo_test"
  "fo_test.pdb"
  "fo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
