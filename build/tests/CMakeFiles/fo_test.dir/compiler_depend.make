# Empty compiler generated dependencies file for fo_test.
# This may be replaced when dependencies are built.
