# Empty compiler generated dependencies file for bench_ltl_verify.
# This may be replaced when dependencies are built.
