file(REMOVE_RECURSE
  "CMakeFiles/bench_ltl_verify.dir/bench_ltl_verify.cc.o"
  "CMakeFiles/bench_ltl_verify.dir/bench_ltl_verify.cc.o.d"
  "bench_ltl_verify"
  "bench_ltl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ltl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
