file(REMOVE_RECURSE
  "CMakeFiles/bench_tm.dir/bench_tm.cc.o"
  "CMakeFiles/bench_tm.dir/bench_tm.cc.o.d"
  "bench_tm"
  "bench_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
