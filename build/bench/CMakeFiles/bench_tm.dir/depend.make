# Empty dependencies file for bench_tm.
# This may be replaced when dependencies are built.
