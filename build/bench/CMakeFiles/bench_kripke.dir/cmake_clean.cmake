file(REMOVE_RECURSE
  "CMakeFiles/bench_kripke.dir/bench_kripke.cc.o"
  "CMakeFiles/bench_kripke.dir/bench_kripke.cc.o.d"
  "bench_kripke"
  "bench_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
