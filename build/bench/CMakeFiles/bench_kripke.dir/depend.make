# Empty dependencies file for bench_kripke.
# This may be replaced when dependencies are built.
