# Empty compiler generated dependencies file for bench_qbf.
# This may be replaced when dependencies are built.
