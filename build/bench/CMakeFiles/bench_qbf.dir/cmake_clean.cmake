file(REMOVE_RECURSE
  "CMakeFiles/bench_qbf.dir/bench_qbf.cc.o"
  "CMakeFiles/bench_qbf.dir/bench_qbf.cc.o.d"
  "bench_qbf"
  "bench_qbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
