file(REMOVE_RECURSE
  "CMakeFiles/bench_search.dir/bench_search.cc.o"
  "CMakeFiles/bench_search.dir/bench_search.cc.o.d"
  "bench_search"
  "bench_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
