file(REMOVE_RECURSE
  "CMakeFiles/bench_buchi.dir/bench_buchi.cc.o"
  "CMakeFiles/bench_buchi.dir/bench_buchi.cc.o.d"
  "bench_buchi"
  "bench_buchi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
