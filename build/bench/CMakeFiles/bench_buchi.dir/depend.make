# Empty dependencies file for bench_buchi.
# This may be replaced when dependencies are built.
