file(REMOVE_RECURSE
  "CMakeFiles/bench_ctl.dir/bench_ctl.cc.o"
  "CMakeFiles/bench_ctl.dir/bench_ctl.cc.o.d"
  "bench_ctl"
  "bench_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
