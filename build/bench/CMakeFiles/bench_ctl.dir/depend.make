# Empty dependencies file for bench_ctl.
# This may be replaced when dependencies are built.
