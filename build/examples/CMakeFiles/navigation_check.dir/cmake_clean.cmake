file(REMOVE_RECURSE
  "CMakeFiles/navigation_check.dir/navigation_check.cpp.o"
  "CMakeFiles/navigation_check.dir/navigation_check.cpp.o.d"
  "navigation_check"
  "navigation_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
