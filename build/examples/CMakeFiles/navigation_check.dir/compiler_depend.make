# Empty compiler generated dependencies file for navigation_check.
# This may be replaced when dependencies are built.
