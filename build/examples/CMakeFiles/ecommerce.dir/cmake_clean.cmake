file(REMOVE_RECURSE
  "CMakeFiles/ecommerce.dir/ecommerce.cpp.o"
  "CMakeFiles/ecommerce.dir/ecommerce.cpp.o.d"
  "ecommerce"
  "ecommerce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
