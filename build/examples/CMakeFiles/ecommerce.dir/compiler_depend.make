# Empty compiler generated dependencies file for ecommerce.
# This may be replaced when dependencies are built.
