# Empty dependencies file for wsvcli.
# This may be replaced when dependencies are built.
