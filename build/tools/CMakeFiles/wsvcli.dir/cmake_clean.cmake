file(REMOVE_RECURSE
  "CMakeFiles/wsvcli.dir/wsvcli.cc.o"
  "CMakeFiles/wsvcli.dir/wsvcli.cc.o.d"
  "wsvcli"
  "wsvcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsvcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
